package telemetry

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/sketch"
)

// ServiceConfig parameterizes the analyzer service.
type ServiceConfig struct {
	// Window is the query evaluation window used to deduplicate
	// threshold alerts across switches (default 100 ms, the paper's
	// epoch).
	Window time.Duration
	// KeepEpochs bounds how many merged epochs stay resident per bank
	// (default 16); older epochs are pruned as new ones arrive.
	KeepEpochs int
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.KeepEpochs <= 0 {
		c.KeepEpochs = 16
	}
	return c
}

// bankKey identifies one sketch row of one query network-wide.
type bankKey struct {
	qid, part, branch, row int
}

// MergedBank is the network-wide merge of one sketch row across every
// switch that exported it for one epoch: Count-Min rows sum counter-wise
// (each packet increments exactly one switch's counter, so the sum is
// the row a single switch seeing all traffic would hold), Bloom rows OR
// bitwise (a key is seen network-wide iff some switch saw it).
type MergedBank struct {
	Kind    modules.BankKind
	Algo    sketch.Algo
	Seed    uint32
	Range   uint32
	KeyMask fields.Mask
	Width   uint32

	// Values are uint64 so counter sums over many switches cannot wrap
	// the registers' 32 bits.
	Values   []uint64
	Switches []string // switch IDs merged in, in arrival order
}

// slot computes the key's index in the merged row, replaying the
// data-plane H module.
func (m *MergedBank) slot(keyBytes []byte) uint32 {
	bs := modules.BankSnapshot{Algo: m.Algo, Seed: m.Seed, Range: m.Range, Width: m.Width}
	return bs.Slot(keyBytes)
}

// alertKey deduplicates threshold alerts network-wide: one alert per
// query, window, and monitored key, whichever switch reports first.
type alertKey struct {
	qid    int
	window uint64
	key    string // masked key bytes
}

// EventKind classifies subscription events.
type EventKind int

const (
	// EventAlert is a network-wide-deduplicated threshold alert.
	EventAlert EventKind = iota
	// EventSnapshotMerged fires when an agent's epoch snapshot has been
	// merged into the network-wide banks.
	EventSnapshotMerged
)

// Event is one subscription message.
type Event struct {
	Kind EventKind

	// Alert fields (EventAlert): the first report of this (query,
	// window, key) network-wide, plus the window it fell in.
	Report dataplane.Report
	Window uint64

	// Merge fields (EventSnapshotMerged).
	SwitchID string
	Epoch    uint32
	Banks    int
}

// agentInfo is the per-stream accounting of one connected agent.
type agentInfo struct {
	Reports   uint64
	Snapshots uint64
	Bye       *rpc.ExportStats // final counters, once the agent said bye
}

// Service is the analyzer-side half of the telemetry plane: a
// concurrent stream server that ingests many agents' report batches and
// epoch snapshots, maintains network-wide merged sketch banks per
// (query, epoch), deduplicates threshold alerts across switches, and
// fans results out to subscribers over channels.
type Service struct {
	cfg ServiceConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	agents map[string]*agentInfo
	merged map[bankKey]map[uint32]*MergedBank // bank -> epoch -> merge
	epochs map[uint32]bool                    // epochs seen (for pruning order)

	seen    map[alertKey]bool
	pending []dataplane.Report // deduped alerts not yet drained
	subs    map[int]chan Event
	nextSub int

	totalReports   uint64
	dupAlerts      uint64
	totalSnapshots uint64
	subDropped     uint64
}

// NewService builds an analyzer service.
func NewService(cfg ServiceConfig) *Service {
	return &Service{
		cfg:    cfg.withDefaults(),
		conns:  map[net.Conn]struct{}{},
		agents: map[string]*agentInfo{},
		merged: map[bankKey]map[uint32]*MergedBank{},
		epochs: map[uint32]bool{},
		seen:   map[alertKey]bool{},
		subs:   map[int]chan Event{},
	}
}

// Serve accepts agent streams until the listener closes (or Close).
func (s *Service) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.HandleConn(conn)
		}()
	}
}

// HandleConn ingests one agent stream (exported so tests and in-process
// deployments can wire net.Pipe ends directly). It returns when the
// stream ends; a clean bye or peer close returns nil.
func (s *Service) HandleConn(conn net.Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return net.ErrClosed
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	var hello Frame
	if err := rpc.ReadFrame(conn, &hello); err != nil {
		return fmt.Errorf("telemetry: reading hello: %w", err)
	}
	if hello.Type != FrameHello || hello.SwitchID == "" {
		return fmt.Errorf("telemetry: stream did not open with hello (got %q)", hello.Type)
	}
	agent := s.registerAgent(hello.SwitchID)

	for {
		var f Frame
		if err := rpc.ReadFrame(conn, &f); err != nil {
			if cleanStreamErr(err) {
				return nil
			}
			return fmt.Errorf("telemetry: agent %s: %w", hello.SwitchID, err)
		}
		switch f.Type {
		case FrameReports:
			s.ingestReports(agent, f.Reports)
		case FrameSnapshot:
			s.ingestSnapshot(agent, hello.SwitchID, f.Epoch, f.Snapshots)
		case FrameBye:
			s.mu.Lock()
			agent.Bye = f.Stats
			s.mu.Unlock()
			return nil
		default:
			return fmt.Errorf("telemetry: agent %s: unknown frame %q", hello.SwitchID, f.Type)
		}
	}
}

func cleanStreamErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrClosedPipe)
}

func (s *Service) registerAgent(id string) *agentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agents[id]
	if a == nil {
		a = &agentInfo{}
		s.agents[id] = a
	}
	return a
}

// ingestReports deduplicates threshold alerts network-wide: reports for
// the same (query, window, key) from different switches — or repeated
// crossings within a window — collapse to the first arrival.
func (s *Service) ingestReports(agent *agentInfo, rs []dataplane.Report) {
	windowNs := uint64(s.cfg.Window)
	var fresh []Event
	s.mu.Lock()
	agent.Reports += uint64(len(rs))
	s.totalReports += uint64(len(rs))
	for _, r := range rs {
		w := r.TS / windowNs
		key := alertKey{qid: r.QueryID, window: w, key: string(r.KeyMask.Bytes(&r.Keys, nil))}
		if s.seen[key] {
			s.dupAlerts++
			continue
		}
		s.seen[key] = true
		s.pending = append(s.pending, r)
		fresh = append(fresh, Event{Kind: EventAlert, Report: r, Window: w})
	}
	s.publishLocked(fresh)
	s.mu.Unlock()
}

// ingestSnapshot merges one agent's epoch snapshot into the
// network-wide banks.
func (s *Service) ingestSnapshot(agent *agentInfo, switchID string, epoch uint32, banks []modules.BankSnapshot) {
	s.mu.Lock()
	agent.Snapshots++
	s.totalSnapshots++
	s.epochs[epoch] = true
	for i := range banks {
		b := &banks[i]
		bk := bankKey{qid: b.QueryID, part: b.Part, branch: b.Branch, row: b.Row}
		byEpoch := s.merged[bk]
		if byEpoch == nil {
			byEpoch = map[uint32]*MergedBank{}
			s.merged[bk] = byEpoch
		}
		m := byEpoch[epoch]
		if m == nil {
			m = &MergedBank{
				Kind: b.Kind, Algo: b.Algo, Seed: b.Seed, Range: b.Range,
				KeyMask: b.KeyMask, Width: b.Width,
				Values: make([]uint64, len(b.Values)),
			}
			byEpoch[epoch] = m
		}
		if len(b.Values) == len(m.Values) {
			if b.Kind == modules.BankBloomRow {
				for j, v := range b.Values {
					m.Values[j] |= uint64(v)
				}
			} else {
				for j, v := range b.Values {
					m.Values[j] += uint64(v)
				}
			}
			m.Switches = append(m.Switches, switchID)
		}
		s.pruneLocked(bk, byEpoch)
	}
	s.publishLocked([]Event{{
		Kind: EventSnapshotMerged, SwitchID: switchID, Epoch: epoch, Banks: len(banks),
	}})
	s.mu.Unlock()
}

// pruneLocked evicts the oldest merged epochs of a bank beyond the
// retention bound.
func (s *Service) pruneLocked(bk bankKey, byEpoch map[uint32]*MergedBank) {
	if len(byEpoch) <= s.cfg.KeepEpochs {
		return
	}
	eps := make([]uint32, 0, len(byEpoch))
	for e := range byEpoch {
		eps = append(eps, e)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	for _, e := range eps[:len(eps)-s.cfg.KeepEpochs] {
		delete(byEpoch, e)
	}
}

// publishLocked fans events out to subscribers without blocking ingest:
// a subscriber whose buffer is full loses the event (counted).
func (s *Service) publishLocked(evs []Event) {
	for _, ev := range evs {
		for _, ch := range s.subs {
			select {
			case ch <- ev:
			default:
				s.subDropped++
			}
		}
	}
}

// Subscribe registers a result consumer. Events arrive on the returned
// channel (buffered to buf, default 64); cancel unregisters and closes
// it. Ingest never blocks on a slow subscriber — overflow events are
// dropped and counted in SubscriberDrops.
func (s *Service) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Event, buf)
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
		s.mu.Unlock()
	}
	return ch, cancel
}

// Estimate answers a network-wide point query from the merged Count-Min
// banks of (query, branch) at the given epoch: the minimum over merged
// rows at the key's slots — exactly the estimate a single switch holding
// all the traffic would produce. The keys vector carries the monitored
// entity (e.g. the victim DstIP); ok is false when no merged CMS rows
// exist for that (query, branch, epoch).
func (s *Service) Estimate(qid, branch int, epoch uint32, keys *fields.Vector) (est uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	est = ^uint64(0)
	for bk, byEpoch := range s.merged {
		if bk.qid != qid || bk.branch != branch {
			continue
		}
		m := byEpoch[epoch]
		if m == nil || m.Kind != modules.BankCMSRow {
			continue
		}
		kb := m.KeyMask.Bytes(keys, nil)
		v := m.Values[m.slot(kb)]
		if v < est {
			est = v
			ok = true
		}
	}
	if !ok {
		return 0, false
	}
	return est, true
}

// SeenDistinct reports whether the merged network-wide Bloom banks of
// (query, branch) at epoch contain the key — true iff every merged
// Bloom row has the key's bit set on some switch.
func (s *Service) SeenDistinct(qid, branch int, epoch uint32, keys *fields.Vector) (seen, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen = true
	for bk, byEpoch := range s.merged {
		if bk.qid != qid || bk.branch != branch {
			continue
		}
		m := byEpoch[epoch]
		if m == nil || m.Kind != modules.BankBloomRow {
			continue
		}
		kb := m.KeyMask.Bytes(keys, nil)
		if m.Values[m.slot(kb)] == 0 {
			seen = false
		}
		ok = true
	}
	if !ok {
		return false, false
	}
	return seen, true
}

// MergedRows returns the merged banks of (query, branch) at epoch, row
// order, for inspection.
func (s *Service) MergedRows(qid, branch int, epoch uint32) []*MergedBank {
	s.mu.Lock()
	defer s.mu.Unlock()
	type rowBank struct {
		row int
		m   *MergedBank
	}
	var rows []rowBank
	for bk, byEpoch := range s.merged {
		if bk.qid != qid || bk.branch != branch {
			continue
		}
		if m := byEpoch[epoch]; m != nil {
			rows = append(rows, rowBank{bk.row, m})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].row < rows[j].row })
	out := make([]*MergedBank, len(rows))
	for i, r := range rows {
		out[i] = r.m
	}
	return out
}

// DrainReports returns and clears the deduplicated alert reports
// accumulated since the last drain — the push-based replacement for the
// controller's per-agent DrainReports polling.
func (s *Service) DrainReports() []dataplane.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending
	s.pending = nil
	return out
}

// Stats summarizes the service's ingest accounting.
type ServiceStats struct {
	Agents          int
	Reports         uint64 // raw reports ingested (pre-dedup)
	DuplicateAlerts uint64 // reports suppressed by network-wide dedup
	Snapshots       uint64 // snapshot frames merged
	SubscriberDrops uint64 // events lost to slow subscribers
}

// Stats returns the current ingest counters.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServiceStats{
		Agents:          len(s.agents),
		Reports:         s.totalReports,
		DuplicateAlerts: s.dupAlerts,
		Snapshots:       s.totalSnapshots,
		SubscriberDrops: s.subDropped,
	}
}

// AgentStats returns the per-agent accounting for switch id (reports
// and snapshots ingested, plus the agent's final exporter counters once
// it said bye — the explicit loss account).
func (s *Service) AgentStats(id string) (agentReports, agentSnapshots uint64, bye *rpc.ExportStats, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agents[id]
	if a == nil {
		return 0, 0, nil, false
	}
	return a.Reports, a.Snapshots, a.Bye, true
}

// Close stops accepting, closes every live stream, and waits for
// handlers to drain. Subscriber channels are closed.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
	s.mu.Unlock()
	return nil
}
