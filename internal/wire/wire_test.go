package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/sketch"
)

// --- generators shared with the fuzz harness ---

func genMask(rng *rand.Rand) fields.Mask {
	var m fields.Mask
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		id := fields.ID(rng.Intn(int(fields.NumFields)))
		if rng.Intn(4) == 0 {
			m[id] = uint64(rng.Intn(0xFFFF) + 1) // partial/derived-key mask
		} else {
			m[id] = id.MaxValue()
		}
	}
	return m
}

func genReports(rng *rand.Rand, streamID string) []dataplane.Report {
	n := rng.Intn(40)
	out := make([]dataplane.Report, 0, n)
	// A few (switch, query, mask) groups, interleaved like a real batch:
	// long same-group runs with occasional group switches.
	type group struct {
		sw   string
		qid  int
		mask fields.Mask
	}
	groups := make([]group, 1+rng.Intn(3))
	for i := range groups {
		sw := streamID
		if rng.Intn(4) == 0 {
			sw = "relay-" + string(rune('a'+i))
		}
		groups[i] = group{sw: sw, qid: rng.Intn(100), mask: genMask(rng)}
	}
	ts := uint64(rng.Intn(1 << 30))
	g := 0
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			g = rng.Intn(len(groups))
		}
		// Jitter can go backwards: merged multi-lane rings are not sorted.
		ts = uint64(int64(ts) + int64(rng.Intn(2000)) - 500)
		r := dataplane.Report{
			SwitchID: groups[g].sw,
			QueryID:  groups[g].qid,
			TS:       ts,
			KeyMask:  groups[g].mask,
			State:    uint64(rng.Intn(1 << 20)),
			Global:   rng.Uint64() >> uint(rng.Intn(64)),
		}
		var keys fields.Vector
		for id := fields.ID(0); id < fields.NumFields; id++ {
			keys[id] = rng.Uint64()
		}
		groups[g].mask.ApplyInto(&keys, &r.Keys)
		out = append(out, r)
	}
	return out
}

func genBanks(rng *rand.Rand, nBanks, width int) []modules.BankSnapshot {
	banks := make([]modules.BankSnapshot, nBanks)
	for i := range banks {
		kind := modules.BankCMSRow
		if rng.Intn(2) == 1 {
			kind = modules.BankBloomRow
		}
		banks[i] = modules.BankSnapshot{
			QueryID: 1 + i/4, Part: rng.Intn(2), Branch: rng.Intn(2), Row: i,
			Kind:    kind,
			Algo:    sketch.Algo(rng.Intn(5)),
			Seed:    rng.Uint32(),
			Range:   uint32(rng.Intn(1 << 16)),
			KeyMask: genMask(rng),
			Width:   uint32(width),
			Values:  make([]uint32, width),
		}
		// Sparse population, like a real window's bank.
		for j := 0; j < width/8; j++ {
			banks[i].Values[rng.Intn(width)] = uint32(rng.Intn(1 << 16))
		}
	}
	return banks
}

// evolve perturbs a bank set the way consecutive epochs do: most slots
// keep similar values, a few change, occasionally a bank reconfigures.
func evolve(rng *rand.Rand, banks []modules.BankSnapshot) []modules.BankSnapshot {
	out := make([]modules.BankSnapshot, len(banks))
	for i := range banks {
		b := banks[i]
		b.Values = append([]uint32(nil), banks[i].Values...)
		for j := 0; j < len(b.Values)/16+1; j++ {
			b.Values[rng.Intn(len(b.Values))] = uint32(rng.Intn(1 << 16))
		}
		if rng.Intn(20) == 0 {
			b.Seed++ // reconfigured hash: delta must fall back to full
		}
		out[i] = b
	}
	return out
}

func checkBanksEqual(t *testing.T, want, got []modules.BankSnapshot) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("bank count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		wv, gv := w.Values, g.Values
		w.Values, g.Values = nil, nil
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("bank %d header mismatch:\nwant %+v\ngot  %+v", i, w, g)
		}
		if len(gv) != int(w.Width) {
			t.Fatalf("bank %d: %d values for width %d", i, len(gv), w.Width)
		}
		for j := range wv {
			if wv[j] != gv[j] {
				t.Fatalf("bank %d cell %d: want %d, got %d", i, j, wv[j], gv[j])
			}
		}
	}
}

// --- framing ---

func TestFrameRoundTrip(t *testing.T) {
	for _, kind := range []Kind{KindReports, KindSnapshot, KindBye} {
		for _, flags := range []Flags{0, FlagCompressed, FlagDelta, FlagCompressed | FlagDelta} {
			payload := []byte("payload for " + kind.String())
			var buf bytes.Buffer
			if err := WriteFrame(&buf, kind, flags, payload); err != nil {
				t.Fatal(err)
			}
			if buf.Len() != HeaderSize+len(payload) {
				t.Fatalf("frame size %d, want %d", buf.Len(), HeaderSize+len(payload))
			}
			hdr, got, err := ReadFrame(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Kind != kind || hdr.Flags != flags || hdr.Version != Version1 {
				t.Fatalf("header %+v, want kind %v flags %v", hdr, kind, flags)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("payload %q, want %q", got, payload)
			}
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, KindReports, 0, []byte("hello wire")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		want    error
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[2] = 99; return b }, ErrBadVersion},
		{"oversized length", func(b []byte) []byte { b[8] = 0xFF; b[9] = 0xFF; b[10] = 0xFF; b[11] = 0x7F; return b }, ErrTooLarge},
		{"payload bit flip", func(b []byte) []byte { b[HeaderSize] ^= 1; return b }, ErrCRC},
		{"crc bit flip", func(b []byte) []byte { b[12] ^= 1; return b }, ErrCRC},
	}
	for _, tc := range cases {
		b := tc.corrupt(frame())
		if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Truncation at every byte boundary: an io error, never a panic.
	b := frame()
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncated frame at %d accepted", cut)
		}
	}
}

func TestCompress(t *testing.T) {
	small := []byte("tiny")
	if out, ok := Compress(small, 512); ok || !bytes.Equal(out, small) {
		t.Fatal("small payload should pass through uncompressed")
	}
	big := bytes.Repeat([]byte("newton telemetry "), 200)
	out, ok := Compress(big, 512)
	if !ok || len(out) >= len(big) {
		t.Fatalf("compressible payload not compressed: %d -> %d", len(big), len(out))
	}
	back, err := Decompress(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, big) {
		t.Fatal("decompress mismatch")
	}
	if _, ok := Compress(big, -1); ok {
		t.Fatal("negative gate must disable compression")
	}
	if _, err := Decompress([]byte{0xde, 0xad, 0xbe, 0xef}); err == nil {
		t.Fatal("garbage must not decompress")
	}
}

// --- report codec ---

func TestReportsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		rs := genReports(rng, "s1")
		payload := AppendReports(nil, "s1", rs)
		got, err := DecodeReports(payload, "s1")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(rs) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: empty batch decoded to %d reports", trial, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(rs, got) {
			t.Fatalf("trial %d: round trip mismatch\nwant %+v\ngot  %+v", trial, rs, got)
		}
	}
}

func TestReportsRejectTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rs := genReports(rng, "s1")
	for len(rs) == 0 {
		rs = genReports(rng, "s1")
	}
	payload := AppendReports(nil, "s1", rs)
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeReports(payload[:cut], "s1"); err == nil {
			t.Fatalf("truncated payload at %d accepted", cut)
		}
	}
	if _, err := DecodeReports(append(payload, 0), "s1"); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// --- snapshot codec ---

func TestSnapshotKeyframeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		banks := genBanks(rng, 1+rng.Intn(6), 64)
		var enc SnapshotEncoder
		var dec SnapshotDecoder
		payload, flags := enc.Encode(nil, uint32(trial), banks)
		if flags&FlagDelta != 0 {
			t.Fatal("first frame must be a keyframe")
		}
		epoch, got, err := dec.Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != uint32(trial) {
			t.Fatalf("epoch %d, want %d", epoch, trial)
		}
		checkBanksEqual(t, banks, got)
	}
}

func TestSnapshotDeltaChain(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	enc := SnapshotEncoder{KeyframeEvery: 4}
	var dec SnapshotDecoder
	banks := genBanks(rng, 5, 128)
	keyBytes, deltaBytes := 0, 0
	for epoch := uint32(1); epoch <= 20; epoch++ {
		payload, flags := enc.Encode(nil, epoch, banks)
		if flags&FlagDelta == 0 {
			keyBytes += len(payload)
		} else {
			deltaBytes += len(payload)
		}
		_, got, err := dec.Decode(payload)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		checkBanksEqual(t, banks, got)
		banks = evolve(rng, banks)
	}
	if enc.DeltaBanks == 0 {
		t.Fatal("delta chain never delta-encoded a bank")
	}
	// 15 delta frames vs 5 keyframes: deltas must be much smaller.
	if deltaBytes*2 >= keyBytes*3 {
		t.Fatalf("delta frames not smaller: %d delta bytes vs %d keyframe bytes", deltaBytes, keyBytes)
	}
}

func TestSnapshotKeyframeCadence(t *testing.T) {
	enc := SnapshotEncoder{KeyframeEvery: 3}
	banks := genBanks(rand.New(rand.NewSource(13)), 2, 32)
	var kinds []bool
	for epoch := uint32(0); epoch < 7; epoch++ {
		_, flags := enc.Encode(nil, epoch, banks)
		kinds = append(kinds, flags&FlagDelta == 0)
	}
	want := []bool{true, false, false, true, false, false, true}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("keyframe cadence %v, want %v", kinds, want)
	}

	every1 := SnapshotEncoder{KeyframeEvery: 1}
	for epoch := uint32(0); epoch < 3; epoch++ {
		if _, flags := every1.Encode(nil, epoch, banks); flags&FlagDelta != 0 {
			t.Fatal("KeyframeEvery=1 must never emit deltas")
		}
	}
}

func TestSnapshotGapRejectedUntilKeyframe(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	enc := SnapshotEncoder{KeyframeEvery: 4}
	var dec SnapshotDecoder
	banks := genBanks(rng, 3, 64)

	type frame struct {
		payload []byte
		flags   Flags
		banks   []modules.BankSnapshot
	}
	var frames []frame
	for epoch := uint32(1); epoch <= 8; epoch++ {
		p, f := enc.Encode(nil, epoch, banks)
		frames = append(frames, frame{p, f, banks})
		banks = evolve(rng, banks)
	}

	// Apply frame 1 (keyframe), drop frame 2 (delta), then try 3: the
	// chain is broken until the next keyframe (frame 5, epoch 5).
	if _, _, err := dec.Decode(frames[0].payload); err != nil {
		t.Fatal(err)
	}
	if frames[1].flags&FlagDelta == 0 || frames[2].flags&FlagDelta == 0 {
		t.Fatal("test wants frames 2 and 3 to be deltas")
	}
	if _, _, err := dec.Decode(frames[2].payload); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("gap: got %v, want ErrDeltaBase", err)
	}
	// Rejection left state intact: frame 2 still applies, then 3.
	if _, got, err := dec.Decode(frames[1].payload); err != nil {
		t.Fatal(err)
	} else {
		checkBanksEqual(t, frames[1].banks, got)
	}
	if _, got, err := dec.Decode(frames[2].payload); err != nil {
		t.Fatal(err)
	} else {
		checkBanksEqual(t, frames[2].banks, got)
	}
	// And after a real gap, the keyframe re-grounds the stream.
	if _, _, err := dec.Decode(frames[5].payload); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("gap: got %v, want ErrDeltaBase", err)
	}
	if frames[4].flags&FlagDelta != 0 {
		t.Fatal("test wants frame 5 to be a keyframe")
	}
	if _, got, err := dec.Decode(frames[4].payload); err != nil {
		t.Fatal(err)
	} else {
		checkBanksEqual(t, frames[4].banks, got)
	}
}

func TestSnapshotReconnectReset(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	enc := SnapshotEncoder{KeyframeEvery: 8}
	banks := genBanks(rng, 3, 64)
	if _, flags := enc.Encode(nil, 1, banks); flags&FlagDelta != 0 {
		t.Fatal("first frame must be a keyframe")
	}
	banks = evolve(rng, banks)
	if _, flags := enc.Encode(nil, 2, banks); flags&FlagDelta == 0 {
		t.Fatal("second frame should be a delta")
	}

	// Reconnect: encoder reset, fresh decoder (the peer lost its state).
	enc.Reset()
	banks = evolve(rng, banks)
	payload, flags := enc.Encode(nil, 3, banks)
	if flags&FlagDelta != 0 {
		t.Fatal("post-reset frame must be a keyframe")
	}
	var dec SnapshotDecoder
	_, got, err := dec.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	checkBanksEqual(t, banks, got)
}

func TestSnapshotRejectTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	var enc SnapshotEncoder
	payload, _ := enc.Encode(nil, 7, genBanks(rng, 3, 32))
	for cut := 0; cut < len(payload); cut++ {
		var dec SnapshotDecoder
		if _, _, err := dec.Decode(payload[:cut]); err == nil {
			t.Fatalf("truncated snapshot at %d accepted", cut)
		}
	}
	var dec SnapshotDecoder
	if _, _, err := dec.Decode(append(payload, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// --- bye codec ---

func TestByeRoundTrip(t *testing.T) {
	st := rpc.ExportStats{Enqueued: 10, Exported: 9, Dropped: 1, Batches: 3, Snapshots: 2, Reconnects: 1}
	payload, err := AppendBye(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBye(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("bye round trip: want %+v, got %+v", st, got)
	}
	if _, err := DecodeBye([]byte("{")); !errors.Is(err, ErrMalformed) {
		t.Fatalf("malformed bye: got %v", err)
	}
}
