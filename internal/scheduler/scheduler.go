// Package scheduler plans concurrent query admission — the open problem
// §7 of the paper leaves as future work ("this paper does not design the
// solution for scheduling concurrent queries to optimally utilize data
// plane resources").
//
// Given a set of prioritized monitoring intents and one device's budget
// (stages, per-bank registers, per-module rule capacity), the scheduler
// compiles each query, then admits queries in priority order at the
// widest sketch geometry that still fits — degrading a query's register
// width (its accuracy) before rejecting it outright. The produced plan
// is sound by construction: Apply installs it into a real module engine
// and every admission succeeds.
package scheduler

import (
	"fmt"
	"sort"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
)

// Request is one query the operator wants deployed.
type Request struct {
	Query    *query.Query
	Priority int // higher admits first

	// MinWidth and MaxWidth bound the acceptable register width per
	// sketch row (accuracy ladder). Zero values default to 256 and 4096.
	MinWidth, MaxWidth uint32
}

// Budget is one device's resource envelope.
type Budget struct {
	// Stages is the module stage count of the pipeline.
	Stages int
	// ArraySize is each state bank's register count.
	ArraySize uint32
	// RulesPerModule is each module table's rule capacity.
	RulesPerModule int
}

// DefaultBudget mirrors the evaluation's device: 12 stages, 4096
// registers per bank, 256 rules per module.
func DefaultBudget() Budget {
	return Budget{Stages: 12, ArraySize: 4096, RulesPerModule: modules.DefaultRulesPerModule}
}

// Decision is the scheduler's verdict for one request.
type Decision struct {
	Request  Request
	Admitted bool
	Width    uint32 // granted register width (0 if rejected)
	Reason   string // why rejected or degraded
	Program  *modules.Program
	Stats    compiler.Stats
}

// bankKey identifies one state bank and one module table.
type bankKey struct{ stage, set int }
type tableKey struct {
	stage, set int
	kind       modules.Kind
}

// Plan admits requests in priority order (ties broken by arrival order),
// degrading widths down the ladder before rejecting. The plan never
// overcommits: register and rule accounting mirrors the engine's
// allocator exactly.
func Plan(reqs []Request, b Budget) []Decision {
	if b.Stages <= 0 || b.ArraySize == 0 || b.RulesPerModule <= 0 {
		b = DefaultBudget()
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool {
		return reqs[order[a]].Priority > reqs[order[c]].Priority
	})

	regsUsed := map[bankKey]uint32{}
	rulesUsed := map[tableKey]int{}
	initRules := 0

	decisions := make([]Decision, len(reqs))
	qid := 1
	for _, idx := range order {
		req := reqs[idx]
		d := Decision{Request: req}
		minW, maxW := req.MinWidth, req.MaxWidth
		if minW == 0 {
			minW = 256
		}
		if maxW == 0 {
			maxW = 4096
		}

		var lastErr string
		for w := maxW; w >= minW; w /= 2 {
			o := compiler.AllOpts()
			o.QID = qid
			o.Width = w
			p, err := compiler.Compile(req.Query, o)
			if err != nil {
				lastErr = err.Error()
				break // compilation failure does not improve with width
			}
			if fits, why := fits(p, b, regsUsed, rulesUsed, initRules); !fits {
				lastErr = why
				continue
			}
			commit(p, regsUsed, rulesUsed)
			initRules += len(p.Branches)
			d.Admitted = true
			d.Width = w
			d.Program = p
			d.Stats = compiler.Measure(req.Query, p)
			if w != maxW {
				d.Reason = fmt.Sprintf("degraded from %d to %d registers per row", maxW, w)
			}
			qid++
			break
		}
		if !d.Admitted {
			d.Reason = lastErr
			if d.Reason == "" {
				d.Reason = "does not fit at any acceptable width"
			}
		}
		decisions[idx] = d
	}
	return decisions
}

// fits checks a compiled program against the remaining budget.
func fits(p *modules.Program, b Budget, regs map[bankKey]uint32, rules map[tableKey]int, initRules int) (bool, string) {
	if s := p.NumStages(); s > b.Stages {
		return false, fmt.Sprintf("needs %d stages, device has %d", s, b.Stages)
	}
	wantRegs := map[bankKey]uint32{}
	wantRules := map[tableKey]int{}
	branches := 0
	for _, br := range p.Branches {
		branches++
		for _, op := range br.Ops {
			tk := tableKey{op.Stage, op.Set & 1, op.Kind}
			wantRules[tk]++
			if op.Kind == modules.ModS && op.S != nil && !op.S.PassThrough && !op.S.CrossRead {
				wantRegs[bankKey{op.Stage, op.Set & 1}] += op.Width()
			}
		}
	}
	for k, w := range wantRegs {
		if regs[k]+w > b.ArraySize {
			return false, fmt.Sprintf("state bank at stage %d set %d needs %d registers, %d free",
				k.stage, k.set, w, b.ArraySize-regs[k])
		}
	}
	for k, n := range wantRules {
		if rules[k]+n > b.RulesPerModule {
			return false, fmt.Sprintf("%v table at stage %d set %d out of rule capacity", k.kind, k.stage, k.set)
		}
	}
	if initRules+branches > b.RulesPerModule*4 {
		return false, "newton_init out of rule capacity"
	}
	return true, ""
}

// commit reserves a program's footprint.
func commit(p *modules.Program, regs map[bankKey]uint32, rules map[tableKey]int) {
	for _, br := range p.Branches {
		for _, op := range br.Ops {
			rules[tableKey{op.Stage, op.Set & 1, op.Kind}]++
			if op.Kind == modules.ModS && op.S != nil && !op.S.PassThrough && !op.S.CrossRead {
				regs[bankKey{op.Stage, op.Set & 1}] += op.Width()
			}
		}
	}
}

// Apply installs every admitted decision into an engine. The plan's
// accounting matches the engine's allocator, so Apply only fails if the
// engine diverges from the budget it was planned for.
func Apply(decisions []Decision, eng *modules.Engine) error {
	for i := range decisions {
		d := &decisions[i]
		if !d.Admitted {
			continue
		}
		if err := eng.Install(d.Program); err != nil {
			return fmt.Errorf("scheduler: plan unsound at %s: %w", d.Request.Query.Name, err)
		}
	}
	return nil
}

// Summary renders the plan for operators.
func Summary(decisions []Decision) string {
	s := ""
	for _, d := range decisions {
		status := "REJECTED"
		detail := d.Reason
		if d.Admitted {
			status = "admitted"
			detail = fmt.Sprintf("width=%d stages=%d rules=%d", d.Width, d.Stats.Stages, d.Stats.Rules)
			if d.Reason != "" {
				detail += " (" + d.Reason + ")"
			}
		}
		s += fmt.Sprintf("%-26s prio=%-3d %s  %s\n", d.Request.Query.Name, d.Request.Priority, status, detail)
	}
	return s
}
