package newton

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the corresponding result via the experiment
// harness and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. cmd/newton-bench prints the full
// tables; these benchmarks track the numbers over time.

import (
	"fmt"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/baselines"
	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/experiments"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// throughputNet builds the standard throughput workload: one switch with
// all nine queries installed and a pre-generated evaluation trace, so the
// benchmark loop measures nothing but the per-packet fast path. workers
// sizes the delivery lanes (0 = package default).
func throughputNet(b *testing.B, workers int) (*netsim.Network, []int, int, int, []*trace.Trace) {
	b.Helper()
	topo, h1, h2 := topology.Linear(1)
	net, err := netsim.New(topo, netsim.Config{Stages: 16, ArraySize: 1 << 16, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	sw := net.Node(topo.Switches()[0])
	for i, q := range query.All() {
		o := compiler.AllOpts()
		o.QID = i + 1
		o.Width = 1 << 12
		p, err := compiler.Compile(q, o)
		if err != nil {
			b.Fatal(err)
		}
		if err := sw.Eng.Install(p); err != nil {
			b.Fatal(err)
		}
	}
	tr := trace.Generate(trace.Config{Seed: 99, Flows: 2000, Duration: 400 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 600},
		trace.PortScan{Scanner: 0x0B000001, Victim: 0x0A0000AC, Ports: 200})
	return net, topo.Switches(), h1, h2, []*trace.Trace{tr}
}

// BenchmarkPacketThroughput is the headline fast-path number: packets per
// second through one fully-loaded Newton switch (all nine queries), with
// allocations per packet on the steady-state path. Reports drain through
// the append form once per trace pass so the loop — including the drain —
// runs at exactly zero allocations per packet.
func BenchmarkPacketThroughput(b *testing.B) {
	net, sws, _, _, trs := throughputNet(b, 1)
	pkts := trs[0].Packets
	// Warm twice: the first pass settles register epochs and caches, the
	// second grows the report buffers to steady size.
	var reports []dataplane.Report
	for p := 0; p < 2; p++ {
		for _, pkt := range pkts {
			net.DeliverPath(pkt, sws)
		}
		reports = net.DrainReportsAppend(reports[:0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(pkts)
		net.DeliverPath(pkts[k], sws)
		if k == len(pkts)-1 {
			reports = net.DrainReportsAppend(reports[:0])
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
	net.DrainReports()
}

// BenchmarkPacketThroughputBatch drives the same workload through the
// parallel batch-delivery path (flow-sharded worker lanes, per-lane
// report sinks) — the path the experiment harness uses. On multi-core
// hosts this scales with the lane count; per-flow ordering is preserved.
func BenchmarkPacketThroughputBatch(b *testing.B) {
	benchBatchWorkers(b, 0)
}

// BenchmarkPacketThroughputWorkers is the scaling axis of the batch
// path: the same workload at fixed lane counts 1, 2, 4, and 8. On a
// single-core host the curve is flat; the CI smoke test gates on it only
// when enough cores are present.
func BenchmarkPacketThroughputWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchBatchWorkers(b, w)
		})
	}
}

func benchBatchWorkers(b *testing.B, workers int) {
	net, _, h1, h2, trs := throughputNet(b, workers)
	pkts := trs[0].Packets
	var reports []dataplane.Report
	for p := 0; p < 2; p++ { // warm: epochs, caches, buffer sizes
		net.DeliverBatch(pkts, h1, h2)
		reports = net.DrainReportsAppend(reports[:0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		chunk := pkts
		if rem := b.N - done; rem < len(chunk) {
			chunk = chunk[:rem]
		}
		net.DeliverBatch(chunk, h1, h2)
		done += len(chunk)
		reports = net.DrainReportsAppend(reports[:0])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
	net.DrainReports()
}

// BenchmarkTable3Resources regenerates Table 3 (per-stage, per-module,
// per-primitive resource utilization).
func BenchmarkTable3Resources(b *testing.B) {
	var compactCrossbar float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table3()
		compactCrossbar = r.PerStageCompact[0]
	}
	b.ReportMetric(compactCrossbar*100, "compact-crossbar-%")
}

// BenchmarkFig10Interruption regenerates Fig. 10 (Sonata outage vs
// Newton's uninterrupted updates).
func BenchmarkFig10Interruption(b *testing.B) {
	var outage time.Duration
	var newtonDropped uint64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10Interruption(1000, 30, 20000)
		outage = r.SonataOutage
		newtonDropped = r.NewtonDropped
	}
	b.ReportMetric(outage.Seconds(), "sonata-outage-s")
	b.ReportMetric(float64(newtonDropped), "newton-dropped-pkts")
}

// BenchmarkFig11OperationDelay regenerates Fig. 11 (install/remove
// latency of the nine queries).
func BenchmarkFig11OperationDelay(b *testing.B) {
	var q1Avg, maxAvg time.Duration
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11OperationDelay(100)
		q1Avg = r.Rows[0].InstallAvg
		for _, row := range r.Rows {
			if row.InstallAvg > maxAvg {
				maxAvg = row.InstallAvg
			}
		}
	}
	b.ReportMetric(float64(q1Avg)/1e6, "q1-install-ms")
	b.ReportMetric(float64(maxAvg)/1e6, "max-install-ms")
}

// BenchmarkFig12Overhead regenerates Fig. 12 (monitoring overhead of six
// systems on two traces).
func BenchmarkFig12Overhead(b *testing.B) {
	var newton, turbo float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12Overhead(2000, 400*time.Millisecond)
		for _, row := range r.Rows {
			if row.Trace != "CAIDA" {
				continue
			}
			switch row.System {
			case baselines.Newton:
				newton = row.Overhead
			case baselines.TurboFlow:
				turbo = row.Overhead
			}
		}
	}
	b.ReportMetric(newton, "newton-msgs/pkt")
	b.ReportMetric(turbo/newton, "turboflow-vs-newton-x")
}

// BenchmarkFig13CQE regenerates Fig. 13 (network-wide overhead vs hop
// count).
func BenchmarkFig13CQE(b *testing.B) {
	var newtonGrowth, sonataGrowth float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13CQEOverhead(5)
		first := map[baselines.System]int{}
		last := map[baselines.System]int{}
		for _, row := range r.Rows {
			if row.Hops == 1 {
				first[row.System] = row.Messages
			}
			if row.Hops == 5 {
				last[row.System] = row.Messages
			}
		}
		newtonGrowth = float64(last[baselines.Newton]) / float64(first[baselines.Newton])
		sonataGrowth = float64(last[baselines.Sonata]) / float64(first[baselines.Sonata])
	}
	b.ReportMetric(newtonGrowth, "newton-5hop-growth-x")
	b.ReportMetric(sonataGrowth, "sonata-5hop-growth-x")
}

// BenchmarkFig14Accuracy regenerates Fig. 14 (accuracy vs registers,
// Sonata vs Newton_h).
func BenchmarkFig14Accuracy(b *testing.B) {
	var sonata256, newton3x256 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14Accuracy([]uint32{256, 1024, 4096}, 3)
		for _, row := range r.Rows {
			if row.Registers != 256 {
				continue
			}
			switch row.System {
			case "Sonata":
				sonata256 = row.Accuracy
			case "Newton_3":
				newton3x256 = row.Accuracy
			}
		}
	}
	b.ReportMetric(sonata256, "sonata-acc@256")
	b.ReportMetric(newton3x256, "newton3-acc@256")
	if sonata256 > 0 {
		b.ReportMetric(newton3x256/sonata256, "improvement-x")
	}
}

// BenchmarkFig15Compilation regenerates Fig. 15 / Fig. 7 (compilation
// optimization across the nine queries).
func BenchmarkFig15Compilation(b *testing.B) {
	var minMod, minStg float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15Compilation()
		minMod, minStg = r.MinModuleReduction, r.MinStageReduction
	}
	b.ReportMetric(minMod*100, "min-module-reduction-%")
	b.ReportMetric(minStg*100, "min-stage-reduction-%")
}

// BenchmarkFig16Multiplexing regenerates Fig. 16 (concurrent Q4 copies).
func BenchmarkFig16Multiplexing(b *testing.B) {
	var pRules100, sModules100 int
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16Multiplexing([]int{1, 100})
		pRules100 = r.Rows[1].PNewtonRules
		sModules100 = r.Rows[1].SNewtonModules
	}
	b.ReportMetric(float64(pRules100), "p-newton-rules@100")
	b.ReportMetric(float64(sModules100), "s-newton-modules@100")
}

// BenchmarkFig17Placement regenerates Fig. 17 (network-wide placement of
// Q4 on fat-trees and the ISP backbone).
func BenchmarkFig17Placement(b *testing.B) {
	var avgAtScale float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig17Placement()
		avgAtScale = r.B[len(r.B)-1].Avg
	}
	b.ReportMetric(avgAtScale, "avg-entries-largest-fattree")
}
