package newton

import (
	"testing"
	"time"
)

// TestPublicAPIEndToEnd drives the whole system through the facade the
// way a downstream user would: build a query, deploy it, replay traffic,
// consume reports, tear it down.
func TestPublicAPIEndToEnd(t *testing.T) {
	topo, h1, h2 := LinearTopology(2)
	net, err := NewNetwork(topo, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(net, 1)

	q := NewQuery("api_syn_flood").
		Filter(Eq(FieldProto, ProtoTCP), Eq(FieldTCPFlags, FlagSYN)).
		Map(FieldDstIP).
		ReduceCount(FieldDstIP).
		FilterResultGt(40).
		Build()

	dep, delay, err := ctl.Install(Deploy{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if delay <= 0 || delay > 25*time.Millisecond {
		t.Errorf("install delay %v out of envelope", delay)
	}

	victim := uint32(0x0A0000AA)
	tr := GenerateTrace(TraceConfig{Seed: 7, Flows: 200, Duration: 200 * time.Millisecond},
		SYNFlood{Victim: victim, Packets: 400})
	for _, pkt := range tr.Packets {
		net.Deliver(pkt, h1, h2)
	}

	col := NewCollector(q.Window, q.ReportKeys())
	col.AddAll(net.DrainReports())
	if !col.FlaggedKeys()[uint64(victim)] {
		t.Fatal("victim not flagged through the public API")
	}

	// Cross-check against the reference engine.
	ref := NewReferenceEngine(q)
	ref.Run(tr.Packets)
	if !ref.FlaggedKeys()[uint64(victim)] {
		t.Fatal("reference engine disagrees")
	}

	if _, err := ctl.Remove(dep.QID); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCatalogAndCompile(t *testing.T) {
	qs := AllQueries()
	if len(qs) != 9 {
		t.Fatalf("catalog size %d", len(qs))
	}
	for i, q := range qs {
		p, err := Compile(q, DefaultCompileOptions())
		if err != nil {
			t.Fatalf("Q%d: %v", i+1, err)
		}
		s := MeasureProgram(q, p)
		if s.Modules == 0 || s.Stages == 0 {
			t.Errorf("Q%d stats empty: %+v", i+1, s)
		}
	}
	if _, err := QueryByName("q6"); err != nil {
		t.Error(err)
	}
	if q := Q6(30); q.NumPrimitives() != 12 {
		t.Error("Q6 shape drifted")
	}
}

func TestPublicMasksAndTopologies(t *testing.T) {
	m := PrefixMask(FieldSrcIP, 24)
	if got := m[FieldSrcIP]; got != 0xFFFFFF00 {
		t.Errorf("PrefixMask = %#x", got)
	}
	if KeepFields(FieldDstIP).IsZero() {
		t.Error("KeepFields empty")
	}
	ft := FatTreeTopology(4)
	if len(ft.Switches()) != 20 {
		t.Error("fat-tree wrong")
	}
	isp := ISPTopology()
	if isp.NumNodes() != 25 {
		t.Error("ISP wrong")
	}
	p, m2, err := PlaceResilient(ft, ft.EdgeSwitches(), 10, 5)
	if err != nil || m2 != 2 || len(p) == 0 {
		t.Errorf("PlaceResilient: %v %d %d", err, m2, len(p))
	}
}

func TestPublicSonataController(t *testing.T) {
	topo, _, _ := LinearTopology(1)
	net, err := NewNetwork(topo, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSonataController(net, 1)
	if out := s.UpdateQueries(topo.Switches()[0], 10000); out < 7*time.Second {
		t.Errorf("outage %v implausible", out)
	}
}

func TestPublicScheduler(t *testing.T) {
	var reqs []ScheduleRequest
	for i, q := range AllQueries() {
		reqs = append(reqs, ScheduleRequest{Query: q, Priority: 9 - i})
	}
	ds := PlanSchedule(reqs, ScheduleBudget{Stages: 16, ArraySize: 1 << 18, RulesPerModule: 1024})
	for i, d := range ds {
		if !d.Admitted {
			t.Errorf("Q%d rejected under ample budget: %s", i+1, d.Reason)
		}
	}
	if ScheduleSummary(ds) == "" {
		t.Error("empty summary")
	}
}
