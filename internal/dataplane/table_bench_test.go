package dataplane

import (
	"fmt"
	"testing"

	"github.com/newton-net/newton/internal/classify"
)

// benchTable builds a newton_init-shaped 6-column ternary table with n
// distinct dst-prefix rules (the realistic large-rule-set shape: LPM on
// one address column, exact proto, wildcard elsewhere).
func benchTable(b *testing.B, n int, cfg classify.Config) *Table {
	b.Helper()
	tb := NewTable("bench", MatchTernary, 6, n*2)
	tb.SetClassifierConfig(cfg)
	vals := make([]uint64, 6)
	masks := []uint64{0, 0xFFFFFF00, 0xFF, 0, 0, 0}
	for i := 0; i < n; i++ {
		vals[1] = 0x0A000000 | uint64(i)<<8
		vals[2] = 6
		if _, err := tb.AddRule(vals, masks, i%4, namedAction("b")); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

// BenchmarkTableLookup measures the per-packet table probe across rule
// counts, hit/miss, and compiled-classifier vs linear-scan modes. The
// scan rows are the seed behavior; the compiled rows are the PR's
// fixed-probe-sequence path.
func BenchmarkTableLookup(b *testing.B) {
	modes := []struct {
		name string
		cfg  classify.Config
	}{
		{"compiled", classify.DefaultConfig()},
		{"scan", classify.Config{MinRules: 1 << 30}},
	}
	for _, rules := range []int{16, 256, 4096, 32768} {
		for _, mode := range modes {
			tb := benchTable(b, rules, mode.cfg)
			hit := []uint64{0, 0x0A000000 | uint64(rules/2)<<8 | 0x42, 6, 1234, 80, 0x10}
			miss := []uint64{0, 0xC0A80000, 17, 1234, 80, 0}
			tb.Lookup(hit...) // warm (compile on first classified lookup)
			for _, probe := range []struct {
				name string
				key  []uint64
			}{{"hit", hit}, {"miss", miss}} {
				b.Run(fmt.Sprintf("rules=%d/%s/%s", rules, mode.name, probe.name), func(b *testing.B) {
					buf := make([]*Rule, 0, 8)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						buf = tb.LookupAllAppend(buf[:0], probe.key)
					}
					_ = buf
				})
			}
		}
	}
}
