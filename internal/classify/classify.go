// Package classify compiles a ternary rule set into chained lookup
// tables so classification costs O(dimensions) per packet instead of
// O(rules): one table probe per match column plus one cross-product
// probe per column pair, with the final leaf holding the complete
// priority-ordered match set precomputed at compile time.
//
// The structure mirrors hardware ACL compilers (and yanet2's filter
// compiler): each column becomes a "dimension" mapping an input value
// to an equivalence-class ID — a sorted interval table when every mask
// in the column is a prefix, a dense value table when the column's care
// bits fit 16 bits — and the per-dimension classes are folded pairwise
// through cross-product tables whose cells name the class of the
// combined constraint. Compilation is bounded by a configurable budget
// (table cells and compile work); rule sets that exceed it, or whose
// masks fit no dimension strategy, return nil and the caller keeps its
// linear ternary scan, which remains the correctness oracle.
//
// The package is self-contained (no dataplane dependency): rules are
// value/mask columns, results are indices into the input rule slice.
// Callers pass rules in match order, so the ascending index lists the
// leaves hold are already priority-ordered match sets.
package classify

import (
	"math/bits"
	"sort"
)

// Rule is one ternary rule: per-column value/mask pairs. A rule matches
// input vals iff vals[c]&Masks[c] == Values[c]&Masks[c] for every
// column c — exactly the dataplane's ternary discipline.
type Rule struct {
	Values []uint64
	Masks  []uint64
}

// Config bounds compilation. Zero fields take the defaults.
type Config struct {
	// MinRules is the smallest rule count worth compiling; below it a
	// linear scan is already cheap and Compile returns nil.
	MinRules int
	// MaxCells caps the total lookup-table cells (dense entries,
	// interval segments, cross-product cells). Exceeding it aborts
	// compilation — the cross-product blowup guard.
	MaxCells int
	// MaxWork caps abstract compile-time work units (predicate
	// evaluations, list merges), so a pathological rule set cannot
	// stall the install path.
	MaxWork int
}

// DefaultConfig returns the default compilation budget: compile at 8+
// rules, at most 1M table cells (4 MB of uint32 cells), 16M work units.
func DefaultConfig() Config {
	return Config{MinRules: 8, MaxCells: 1 << 20, MaxWork: 1 << 24}
}

func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.MinRules == 0 {
		c.MinRules = d.MinRules
	}
	if c.MaxCells == 0 {
		c.MaxCells = d.MaxCells
	}
	if c.MaxWork == 0 {
		c.MaxWork = d.MaxWork
	}
	return c
}

// Stats describes a compiled classifier's size, for resource accounting
// and observability.
type Stats struct {
	Dims   int // probed dimensions (wildcard-everywhere columns are skipped)
	Leaves int // distinct final match sets
	Cells  int // total lookup-table cells across dimension and cross tables
	Bytes  int // approximate resident size of the lookup structure
}

// budget is the running compile allowance.
type budget struct{ cells, work int }

func (b *budget) takeCells(n int) bool {
	b.cells -= n
	return b.cells >= 0
}

func (b *budget) takeWork(n int) bool {
	b.work -= n
	return b.work >= 0
}

type dimKind uint8

const (
	dimDense dimKind = iota
	dimInterval
)

// dim maps one column's input value to an equivalence-class ID. All
// fields are immutable after compile; classOf is lock-free and
// allocation-free.
type dim struct {
	kind dimKind
	col  int    // original column index
	mask uint64 // dense: index mask (size-1); interval: domain mask

	dense []uint32 // dense: masked value -> class

	bounds []uint64 // interval: ascending segment lower bounds, bounds[0]==0
	cls    []uint32 // interval: segment -> class

	// classes holds, per class, the ascending (= match-ordered) rule
	// indices whose predicate in this column the class satisfies. Used
	// during the cross-product fold; cleared afterwards except on the
	// final level, whose lists become the leaves.
	classes [][]int32
}

// classOf returns the equivalence class of v in this dimension.
func (d *dim) classOf(v uint64) uint32 {
	if d.kind == dimDense {
		return d.dense[v&d.mask]
	}
	// Interval: greatest i with bounds[i] <= v&mask. bounds[0]==0, so
	// the search never falls off the left edge.
	v &= d.mask
	lo, hi := 0, len(d.bounds)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if d.bounds[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return d.cls[lo]
}

// Compiled is the immutable compiled classifier. Lookup is lock-free
// and performs zero allocations; the returned slices are shared
// read-only state.
type Compiled struct {
	dims   []dim      // probe order (ascending class count)
	cross  [][]uint32 // cross[i] folds level-i class with dims[i+1] class
	stride []uint32   // cross[i] row stride = len(dims[i+1].classes)
	leaves [][]int32  // final class -> ascending rule indices (match order)
	stats  Stats
}

// Lookup classifies vals (one value per original column) and returns
// the ascending — i.e. match-ordered — indices of every matching rule.
// The slice is shared and must not be mutated. Zero allocations.
func (c *Compiled) Lookup(vals []uint64) []int32 {
	if len(c.dims) == 0 {
		return c.leaves[0]
	}
	d := &c.dims[0]
	cls := d.classOf(vals[d.col])
	for i := 1; i < len(c.dims); i++ {
		d = &c.dims[i]
		cls = c.cross[i-1][cls*c.stride[i-1]+d.classOf(vals[d.col])]
	}
	return c.leaves[cls]
}

// Stats returns the compiled structure's size.
func (c *Compiled) Stats() Stats { return c.stats }

// Compile builds the chained lookup structure for rules (given in match
// order: priority descending, ties already broken). It returns nil when
// the set is below MinRules, when a column's masks fit no dimension
// strategy (neither all-prefix nor 16-bit care), or when the budget is
// exceeded — in every case the caller's linear scan stays correct.
func Compile(cols int, rules []Rule, cfg Config) *Compiled {
	cfg = cfg.normalized()
	n := len(rules)
	if cols <= 0 || n == 0 || n < cfg.MinRules || n > 1<<30 {
		return nil
	}
	for i := range rules {
		if len(rules[i].Values) != cols || len(rules[i].Masks) != cols {
			return nil
		}
	}
	bud := &budget{cells: cfg.MaxCells, work: cfg.MaxWork}

	var dims []dim
	for col := 0; col < cols; col++ {
		preds := buildPreds(rules, col)
		var care uint64
		for i := range preds {
			care |= preds[i].mask
		}
		if care == 0 {
			// Every rule wildcards this column: it constrains nothing.
			continue
		}
		d, ok := buildDim(col, preds, care, bud)
		if !ok {
			return nil
		}
		dims = append(dims, d)
	}
	c := &Compiled{}
	if len(dims) == 0 {
		// Every column wildcarded: one leaf matching all rules.
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		c.leaves = [][]int32{all}
		c.stats = Stats{Leaves: 1, Bytes: 4 * n}
		return c
	}

	// Fold narrow dimensions first: intermediate class counts (and so
	// cross-table sizes) stay minimal.
	sort.SliceStable(dims, func(i, j int) bool {
		return len(dims[i].classes) < len(dims[j].classes)
	})
	c.dims = dims

	cur := dims[0].classes
	for i := 1; i < len(dims); i++ {
		d := &dims[i]
		aC, bC := len(cur), len(d.classes)
		if !bud.takeCells(aC * bC) {
			return nil
		}
		tbl := make([]uint32, aC*bC)
		cs := newClassSet()
		for ai := 0; ai < aC; ai++ {
			a := cur[ai]
			row := tbl[ai*bC:]
			for bi := 0; bi < bC; bi++ {
				b := d.classes[bi]
				w := len(a)
				if len(b) < w {
					w = len(b)
				}
				if !bud.takeWork(w + 1) {
					return nil
				}
				row[bi] = cs.id(intersect(a, b))
			}
		}
		c.cross = append(c.cross, tbl)
		c.stride = append(c.stride, uint32(bC))
		cur = cs.lists
	}
	c.leaves = cur

	st := Stats{Dims: len(dims), Leaves: len(c.leaves)}
	for i := range dims {
		st.Cells += len(dims[i].dense) + len(dims[i].cls)
		st.Bytes += 4*len(dims[i].dense) + 12*len(dims[i].cls)
	}
	for _, t := range c.cross {
		st.Cells += len(t)
		st.Bytes += 4 * len(t)
	}
	for _, l := range c.leaves {
		st.Bytes += 4 * len(l)
	}
	c.stats = st

	// The per-dimension class lists were only needed for the fold; the
	// final level's lists live on as c.leaves.
	for i := range dims {
		dims[i].classes = nil
	}
	return c
}

// pred is one distinct (value&mask, mask) column predicate and the
// ascending rule indices that carry it. Each rule contributes exactly
// one predicate per column, so predicate rule lists are disjoint.
type pred struct {
	val, mask uint64
	rules     []int32
}

func buildPreds(rules []Rule, col int) []pred {
	idx := make(map[[2]uint64]int)
	var preds []pred
	for i := range rules {
		m := rules[i].Masks[col]
		v := rules[i].Values[col] & m
		k := [2]uint64{v, m}
		j, ok := idx[k]
		if !ok {
			j = len(preds)
			idx[k] = j
			preds = append(preds, pred{val: v, mask: m})
		}
		preds[j].rules = append(preds[j].rules, int32(i))
	}
	return preds
}

// buildDim picks the column strategy: sorted intervals when every mask
// is a width-W prefix (exact full-width masks included — they are
// point intervals), a dense value table when the care bits fit 16 bits,
// otherwise uncompilable.
func buildDim(col int, preds []pred, care uint64, bud *budget) (dim, bool) {
	w := bits.Len64(care)
	allPrefix := true
	for i := range preds {
		m := preds[i].mask
		if m == 0 {
			continue
		}
		if !isPrefixAt(m, w) {
			allPrefix = false
			break
		}
	}
	if allPrefix {
		return buildInterval(col, preds, w, bud)
	}
	if care <= 0xFFFF {
		return buildDense(col, preds, care, bud)
	}
	return dim{}, false
}

// isPrefixAt reports whether m is a contiguous run of ones whose top
// bit is w-1 — a prefix within the dimension's w-bit care domain, so
// its match set is one interval of that domain.
func isPrefixAt(m uint64, w int) bool {
	if bits.Len64(m) != w {
		return false
	}
	run := m >> uint(bits.TrailingZeros64(m))
	return run&(run+1) == 0
}

// buildInterval compiles a prefix-masked column into a sorted segment
// table: predicate interval endpoints partition the w-bit domain into
// segments of constant match set; a sweep computes each segment's rule
// list and dedupes identical lists into classes.
func buildInterval(col int, preds []pred, w int, bud *budget) (dim, bool) {
	domain := ^uint64(0)
	if w < 64 {
		domain = 1<<uint(w) - 1
	}
	type span struct {
		lo, hi uint64
		p      int32
	}
	spans := make([]span, len(preds))
	bset := map[uint64]struct{}{0: {}}
	for i := range preds {
		lo := preds[i].val & preds[i].mask
		hi := lo | (domain &^ preds[i].mask)
		spans[i] = span{lo, hi, int32(i)}
		bset[lo] = struct{}{}
		if hi < domain {
			bset[hi+1] = struct{}{}
		}
	}
	bounds := make([]uint64, 0, len(bset))
	for b := range bset {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	if !bud.takeCells(len(bounds)) {
		return dim{}, false
	}

	byStart := make([]span, len(spans))
	copy(byStart, spans)
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].lo < byStart[j].lo })
	byEnd := spans
	sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].hi < byEnd[j].hi })

	cs := newClassSet()
	cls := make([]uint32, len(bounds))
	active := make([]int32, 0, 64) // live predicate ids, lazily compacted
	dead := make([]bool, len(preds))
	deadCount := 0
	si, ei := 0, 0
	for i, b := range bounds {
		for ei < len(byEnd) && byEnd[ei].hi < b {
			dead[byEnd[ei].p] = true
			deadCount++
			ei++
		}
		for si < len(byStart) && byStart[si].lo <= b {
			active = append(active, byStart[si].p)
			si++
		}
		if deadCount*2 > len(active) {
			live := active[:0]
			for _, p := range active {
				if !dead[p] {
					live = append(live, p)
				}
			}
			active = live
			deadCount = 0
		}
		total := 0
		for _, p := range active {
			if !dead[p] {
				total += len(preds[p].rules)
			}
		}
		if !bud.takeWork(total + len(active) + 1) {
			return dim{}, false
		}
		l := make([]int32, 0, total)
		for _, p := range active {
			if !dead[p] {
				l = append(l, preds[p].rules...)
			}
		}
		sortInt32(l)
		cls[i] = cs.id(l)
	}
	return dim{
		kind: dimInterval, col: col, mask: domain,
		bounds: bounds, cls: cls, classes: cs.lists,
	}, true
}

// buildDense compiles a small-care column into a dense value table
// sized to the next power of two covering the care mask: every input
// value reduces to its masked low bits, and each table slot names the
// class of that value's match set.
func buildDense(col int, preds []pred, care uint64, bud *budget) (dim, bool) {
	size := 1 << uint(bits.Len64(care)) // care <= 0xFFFF, so size <= 65536
	if !bud.takeCells(size) || !bud.takeWork(size*(len(preds)+1)) {
		return dim{}, false
	}
	dense := make([]uint32, size)
	cs := newClassSet()
	matched := make([]int32, 0, len(preds))
	for v := 0; v < size; v++ {
		matched = matched[:0]
		total := 0
		for pi := range preds {
			if uint64(v)&preds[pi].mask == preds[pi].val {
				matched = append(matched, int32(pi))
				total += len(preds[pi].rules)
			}
		}
		l := make([]int32, 0, total)
		for _, pi := range matched {
			l = append(l, preds[pi].rules...)
		}
		sortInt32(l)
		dense[v] = cs.id(l)
	}
	return dim{
		kind: dimDense, col: col, mask: uint64(size - 1),
		dense: dense, classes: cs.lists,
	}, true
}

// classSet dedupes rule-index lists into class IDs.
type classSet struct {
	hash  map[uint64][]uint32
	lists [][]int32
}

func newClassSet() *classSet {
	return &classSet{hash: make(map[uint64][]uint32)}
}

// id returns the class of l, registering it if new. l must be sorted.
func (cs *classSet) id(l []int32) uint32 {
	h := hashList(l)
	for _, id := range cs.hash[h] {
		if equalList(cs.lists[id], l) {
			return id
		}
	}
	id := uint32(len(cs.lists))
	cs.lists = append(cs.lists, l)
	cs.hash[h] = append(cs.hash[h], id)
	return id
}

func hashList(l []int32) uint64 {
	h := uint64(1469598103934665603) // FNV-1a
	for _, v := range l {
		h = (h ^ uint64(uint32(v))) * 1099511628211
	}
	return h
}

func equalList(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// intersect returns the intersection of two ascending lists, ascending.
// When one side is much shorter it gallops with binary search instead
// of merging — the common case of a point class against a wildcard
// class holding every rule.
func intersect(a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	var out []int32
	if len(b) >= 16*len(a) {
		for _, v := range a {
			lo, hi := 0, len(b)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if b[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(b) && b[lo] == v {
				out = append(out, v)
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func sortInt32(l []int32) {
	sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
}
