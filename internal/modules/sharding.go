package modules

import (
	"sync/atomic"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/obs"
)

// This file implements the sharded multi-worker engine: per-worker
// execution lanes (dispatch cache, hash memos, counters, latency
// sampling) and the optional worker-private state-bank mode with its
// epoch-boundary merge.
//
// Two disciplines govern shared state under parallel delivery:
//
//   - Control-path state (classification, memos, counters) is always
//     worker-private: a lane is driven by one goroutine at a time
//     (dataplane.Context.Lane), so the per-packet path takes no locks
//     and issues no LOCK-prefixed instructions for it.
//
//   - Data-path state (the register banks) is shared and linearizable
//     (CAS transactions) under BankShared — the default, which keeps
//     every windowed count exact regardless of interleaving — or
//     worker-private under BankPrivate for the bank rows where a
//     private shard provably merges back exactly: commutative ALUs
//     (Add, Or) with no result process earlier in the chain. Rows that
//     fail that predicate (threshold-gated reduces, Read/Write ALUs,
//     ExecSeq-dependent sequential flows) stay on the shared array —
//     non-commutative operations cannot be decomposed across workers
//     and must serialize on a single lane.

// engineLane is one worker's private execution state. The leading and
// trailing pads keep hot per-lane counters on distinct cachelines so
// neighboring workers never false-share. All counters are single-writer
// (the lane's goroutine) and read by scrapes with atomic loads; writes
// use store-after-load atomics — plain MOVs on x86-64, no LOCK prefix.
type engineLane struct {
	_ [8]uint64

	pkts           uint64
	dispatchMisses uint64
	modExecs       [NumKinds]uint64

	// version/entries form the lane's dispatch cache: newton_init's
	// LookupAll result memoized per classifier input, valid only at the
	// recorded classifier version. Lock-free: only the lane's goroutine
	// touches the map.
	version uint64
	entries map[dispatchKey]*dispatchEntry

	// execNS, when set via AttachObs, receives 1-in-execSampleEvery
	// sampled whole-Execute latencies for this lane. Nil when unobserved
	// so the fast path pays only a nil check.
	execNS *obs.Histogram

	_ [8]uint64
}

// lookup returns the lane's cached entry for k at the given classifier
// version.
func (l *engineLane) lookup(version uint64, k *dispatchKey) *dispatchEntry {
	if l.version != version || l.entries == nil {
		return nil
	}
	return l.entries[*k]
}

// store records the entry for k at the given classifier version,
// flushing the cache when the version moved or the entry cap is hit.
func (l *engineLane) store(version uint64, k *dispatchKey, e *dispatchEntry) {
	if l.version != version || l.entries == nil || len(l.entries) >= maxDispatchEntries {
		l.entries = make(map[dispatchKey]*dispatchEntry)
		l.version = version
	}
	l.entries[*k] = e
}

// bump increments a single-writer counter without a LOCK prefix while
// keeping concurrent atomic readers exact, and returns the new value.
func bump(p *uint64) uint64 {
	v := atomic.LoadUint64(p) + 1
	atomic.StoreUint64(p, v)
	return v
}

// add is bump for arbitrary increments.
func add(p *uint64, n uint64) {
	atomic.StoreUint64(p, atomic.LoadUint64(p)+n)
}

// BankMode selects the state-bank sharding discipline.
type BankMode int

const (
	// BankShared keeps every state bank on the shared register arrays
	// with linearizable (CAS) transactions: exact results at any worker
	// count, identical to single-lane execution for every permutation-
	// invariant quantity.
	BankShared BankMode = iota
	// BankPrivate gives each worker lane a private shard of every
	// shardable bank row (commutative ALU, no earlier result process in
	// the chain; see prepareBranch), merged counter-wise (CMS) or
	// bitwise-OR (Bloom) into the canonical bank at epoch boundaries.
	// Mid-window reads of a sharded row observe only the lane's partial
	// state, so threshold reports against sharded rows become
	// lane-local; merged epoch snapshots remain exact.
	BankPrivate
)

// String names the bank mode.
func (m BankMode) String() string {
	if m == BankPrivate {
		return "private"
	}
	return "shared"
}

// Workers returns the engine's lane count.
func (e *Engine) Workers() int { return len(e.lanes) }

// BankModeActive returns the active state-bank sharding discipline.
func (e *Engine) BankModeActive() BankMode { return e.bankMode }

// SetWorkers sizes the engine for n delivery workers, one private lane
// per worker. Call it from the control plane (not concurrently with
// Execute); counters accumulated so far are preserved — folded into
// lane 0 when shrinking. Under BankPrivate the per-lane bank shards of
// installed programs are resized to match.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n == len(e.lanes) {
		return
	}
	for len(e.lanes) > n {
		last := e.lanes[len(e.lanes)-1]
		l0 := e.lanes[0]
		add(&l0.pkts, atomic.LoadUint64(&last.pkts))
		add(&l0.dispatchMisses, atomic.LoadUint64(&last.dispatchMisses))
		for k := range last.modExecs {
			add(&l0.modExecs[k], atomic.LoadUint64(&last.modExecs[k]))
		}
		e.lanes = e.lanes[:len(e.lanes)-1]
	}
	for len(e.lanes) < n {
		l := new(engineLane)
		if e.laneObs != nil {
			l.execNS = e.laneObs(len(e.lanes))
		}
		e.lanes = append(e.lanes, l)
	}
	e.refreshLaneArrays()
}

// SetBankMode selects the state-bank sharding discipline. Like
// SetWorkers it is a control-plane operation; switching modes while a
// window is in flight loses the private shards' unmerged state, so do
// it at an epoch boundary (or before traffic).
func (e *Engine) SetBankMode(m BankMode) {
	if e.bankMode == m {
		return
	}
	e.bankMode = m
	e.refreshLaneArrays()
}

// allocLaneArrays gives an owning state-bank op its per-lane shards
// (BankPrivate with >1 lane only; otherwise clears them). Lane 0 always
// executes against the canonical array, so slot 0 stays nil and the
// merge folds lanes 1..n-1 into the canonical bank.
func (e *Engine) allocLaneArrays(s *SConfig) {
	if e.bankMode != BankPrivate || len(e.lanes) < 2 || !s.shardable {
		s.laneArrays = nil
		return
	}
	las := make([]*dataplane.RegisterArray, len(e.lanes))
	for w := 1; w < len(las); w++ {
		las[w] = dataplane.NewRegisterArray(s.array.Name+"/lane", s.width)
	}
	s.laneArrays = las
}

// refreshLaneArrays re-derives every installed program's per-lane bank
// shards after a worker-count or bank-mode change, then rebinds
// cross-branch reads to the refreshed shards.
func (e *Engine) refreshLaneArrays() {
	for _, p := range e.installed {
		for _, b := range p.Branches {
			for _, op := range b.Ops {
				s := op.S
				if op.Kind != ModS || s == nil || s.PassThrough || s.CrossRead || s.array == nil {
					continue
				}
				e.allocLaneArrays(s)
			}
		}
		for _, b := range p.Branches {
			for _, op := range b.Ops {
				s := op.S
				if op.Kind != ModS || s == nil || !s.CrossRead {
					continue
				}
				if target := e.findRow0(p, s.ReadBranch); target != nil {
					s.laneArrays = target.laneArrays
				}
			}
		}
	}
}

// MergeWorkers folds every private lane shard into its canonical bank —
// counter-wise for CMS (Add) rows, bitwise-OR for Bloom (Or) rows — and
// resets the shards for the next window. Call it at an epoch boundary,
// after the workers joined and before the canonical epoch rolls, so
// exported snapshots see the whole window. It is idempotent: merged
// shards read as zero until rewritten. A no-op under BankShared.
func (e *Engine) MergeWorkers() {
	if e.bankMode != BankPrivate || len(e.lanes) < 2 {
		return
	}
	for _, p := range e.installed {
		for _, b := range p.Branches {
			for _, op := range b.Ops {
				s := op.S
				if op.Kind != ModS || s == nil || s.CrossRead || len(s.laneArrays) == 0 {
					continue
				}
				for _, la := range s.laneArrays {
					if la == nil {
						continue
					}
					e.mergeScratch = la.Snapshot(0, s.width, e.mergeScratch[:0])
					for i, v := range e.mergeScratch {
						if v == 0 {
							continue
						}
						s.array.ExecSeq(s.ALU, s.offset+uint32(i), v)
					}
					la.NextEpoch()
				}
			}
		}
	}
}

// RollEpoch ends the current evaluation window: private lane shards (if
// any) merge into the canonical banks, then every register epoch rolls.
// This is the one epoch-roll entry point sharded deployments must use —
// rolling the pipeline directly would discard unmerged lane state.
func (e *Engine) RollEpoch() {
	e.MergeWorkers()
	e.layout.Pipeline().NextEpoch()
}
