package compiler

import (
	"fmt"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/sketch"
)

// mergeTail compiles the cross-branch result merging of multi-branch
// queries (the worked example of Fig. 6): scale the branch's own count,
// read the other branches' row-0 state banks at the same key, fold them
// into the global result, and threshold-report.
func mergeTail(q *query.Query, bi int, o Options) ([]*unit, error) {
	if q.Merge == nil {
		return nil, nil
	}
	m := q.Merge
	coeff := func(i int) int64 {
		if m.Op == query.MergeMin {
			return 1
		}
		if i < len(m.Coeffs) {
			return m.Coeffs[i]
		}
		return 1
	}

	var units []*unit

	// Scale the branch's own contribution (linear merges only; min
	// merges fold raw values).
	if m.Op == query.MergeLinear && coeff(bi) != 1 {
		u := &unit{tailRead: true}
		u.ops = append(u.ops, &modules.Op{Kind: modules.ModR, R: &modules.RConfig{
			OnGlobal: true,
			Entries: []modules.REntry{{Lo: -rInf, Hi: rInf,
				Actions: []modules.RAct{{Kind: modules.RActGlobalScale, Coeff: coeff(bi)}}}},
		}})
		units = append(units, u)
	}

	// Read each other branch's row-0 bank at this packet's key value.
	ownKeys := q.Branches[bi].StatefulKeys()
	for ob := range q.Branches {
		if ob == bi {
			continue
		}
		act := modules.RAct{Kind: modules.RActGlobalAdd, Coeff: coeff(ob)}
		if m.Op == query.MergeMin {
			act = modules.RAct{Kind: modules.RActGlobalMin}
		}
		u := &unit{tailRead: true}
		u.ops = append(u.ops,
			&modules.Op{Kind: modules.ModK, K: &modules.KConfig{Mask: ownKeys}},
			&modules.Op{Kind: modules.ModH, H: &modules.HConfig{
				Algo: sketch.CRC32IEEE, Seed: rowSeed(0), Range: o.Width, Direct: modules.NoField}},
			&modules.Op{Kind: modules.ModS, S: &modules.SConfig{
				ALU: dataplane.OpRead, Operand: modules.OperandConst,
				CrossRead: true, ReadBranch: ob, WidthHint: o.Width,
				OwnerIndex: o.ShardIndex, OwnerCount: o.ShardCount,
			}},
			&modules.Op{Kind: modules.ModR, R: &modules.RConfig{
				Entries: []modules.REntry{{Lo: -rInf, Hi: rInf, Actions: []modules.RAct{act}}}}})
		units = append(units, u)
	}

	// Threshold and report. For greater-than merges, the report fires in
	// the crossing window [Th+1, Th+step] where step bounds one packet's
	// contribution; linear merges can re-enter the window, so reports
	// may repeat (deduplicated by the analyzer).
	rep := &unit{reportR: true, gates: true}
	var entries []modules.REntry
	if m.Cmp == query.CmpLt {
		entries = []modules.REntry{{Lo: -rInf, Hi: m.Threshold - 1,
			Actions: []modules.RAct{{Kind: modules.RActReport}}}}
	} else {
		step := maxPositiveStep(q, m)
		entries = []modules.REntry{
			{Lo: m.Threshold + 1, Hi: m.Threshold + step,
				Actions: []modules.RAct{{Kind: modules.RActReport}}},
			{Lo: m.Threshold + step + 1, Hi: rInf},
		}
	}
	rep.ops = append(rep.ops, &modules.Op{Kind: modules.ModR, R: &modules.RConfig{OnGlobal: true, Entries: entries}})
	units = append(units, rep)
	return units, nil
}

// maxPositiveStep bounds how far one packet can push the merged value
// upward: counts step by 1, byte sums by a full MTU, each scaled by its
// branch coefficient.
func maxPositiveStep(q *query.Query, m *query.Merge) int64 {
	var step int64 = 1
	for bi := range q.Branches {
		inc := int64(1)
		for _, pr := range q.Branches[bi].Prims {
			if pr.Kind == query.KindReduce && pr.Value != query.ValueOne {
				inc = 1600 // MTU-class field values (PktLen)
			}
		}
		c := int64(1)
		if m.Op == query.MergeLinear && bi < len(m.Coeffs) {
			c = m.Coeffs[bi]
		}
		if c > 0 && c*inc > step {
			step = c * inc
		}
	}
	return step
}

// assignSets distributes units over the two metadata sets: vertical
// composition (Opt.3) alternates sets unit by unit so consecutive
// primitives can share physical stages; merge-tail reads take the set
// opposite the report keys, and the reporting R takes the report-key set
// so mirrored operation keys name the monitored entity.
func assignSets(units []*unit, o Options) {
	alt, row0Set := 0, 0
	for _, u := range units {
		if u.reportR {
			continue
		}
		// Merge-tail reads select the same key mask the row-0 K already
		// installed, so they can keep alternating without clobbering the
		// report keys (their redundant Ks prune away).
		set := 0
		if o.Opt3 {
			set = alt % 2
		}
		for _, op := range u.ops {
			op.Set = set
		}
		if u.isRow0 {
			row0Set = set
		}
		alt++
	}
	for _, u := range units {
		if u.reportR {
			for _, op := range u.ops {
				op.Set = row0Set
			}
		}
	}
}

// pruneRedundantK is the second half of Opt.2: contiguous primitives
// with identical operation keys share one K per metadata set, "as
// selected fields can be passed to the subsequent module". Units left
// empty (maps whose keys the next primitive re-selects) disappear
// entirely.
func pruneRedundantK(units []*unit) []*unit {
	var theta [2]*modules.KConfig
	out := units[:0]
	for _, u := range units {
		kept := u.ops[:0]
		for _, op := range u.ops {
			if op.Kind == modules.ModK {
				cur := theta[op.Set&1]
				if cur != nil && cur.Mask.Equal(op.K.Mask) {
					continue // redundant K: same keys already selected
				}
				theta[op.Set&1] = op.K
			}
			kept = append(kept, op)
		}
		u.ops = kept
		if len(u.ops) > 0 {
			out = append(out, u)
		}
	}
	return out
}

// assignStages is Algorithm 1's placement loop. Each op takes the
// earliest stage that respects the module dependency matrix of Fig. 4:
//
//   - read-after-write within a metadata set: H after the K providing
//     its keys, S after the H providing its index, R after the S
//     providing its state result;
//   - write-after-read within a set: a K must not clobber operation keys
//     an earlier H still needs, an H must not clobber a hash an earlier
//     S still needs, an S must not clobber a state result an earlier R
//     still needs;
//   - the global result is a single shared field, so R modules touching
//     it serialize across both sets;
//   - control gating: state writes stay behind any earlier R that can
//     stop the packet (filters, the distinct gate).
//
// Without Opt.3 the composition is horizontal — strictly one module per
// stage, continuing from `start` so branches chain sequentially — and
// the function returns the new running stage counter.
func assignStages(units []*unit, o Options, start int) int {
	type setState struct{ k, h, s, r int }
	var last [2]setState
	lastGlobalR, lastGate, seq := 0, 0, start
	max := func(xs ...int) int {
		m := 0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	for _, u := range units {
		gateStage := 0
		for _, op := range u.ops {
			st := &last[op.Set&1]
			var s int
			if o.Opt3 {
				switch op.Kind {
				case modules.ModK:
					s = max(st.k, st.h) + 1
				case modules.ModH:
					s = max(st.k, st.h, st.s) + 1
				case modules.ModS:
					s = max(st.h, st.s, st.r) + 1
					if writesState(op) {
						s = max(s, lastGate+1)
					}
				case modules.ModR:
					s = max(st.s, st.r) + 1
					if usesGlobal(op) {
						s = max(s, lastGlobalR+1)
					}
				}
			} else {
				s = seq + 1
			}
			op.Stage = s
			seq = max(seq, s)
			switch op.Kind {
			case modules.ModK:
				st.k = max(st.k, s)
			case modules.ModH:
				st.h = max(st.h, s)
			case modules.ModS:
				st.s = max(st.s, s)
			case modules.ModR:
				st.r = max(st.r, s)
				gateStage = s
			}
			if usesGlobal(op) {
				lastGlobalR = max(lastGlobalR, s)
			}
		}
		if u.gates {
			lastGate = max(lastGate, gateStage)
		}
	}
	if o.Opt3 {
		return 0
	}
	return seq
}

// usesGlobal reports whether an R op reads or writes the global result.
func usesGlobal(op *modules.Op) bool {
	if op.Kind != modules.ModR || op.R == nil {
		return false
	}
	if op.R.OnGlobal {
		return true
	}
	for _, e := range op.R.Entries {
		for _, a := range e.Actions {
			switch a.Kind {
			case modules.RActSetGlobal, modules.RActGlobalAdd, modules.RActGlobalMin, modules.RActGlobalScale:
				return true
			}
		}
	}
	return false
}

// writesState reports whether an op mutates a state bank.
func writesState(op *modules.Op) bool {
	return op.Kind == modules.ModS && op.S != nil && !op.S.PassThrough
}

// Stats summarizes a compiled program for the Fig. 15 axes.
type Stats struct {
	Query      string
	Primitives int
	Modules    int
	Stages     int
	Rules      int
}

// Measure computes compilation statistics for q under p.
func Measure(q *query.Query, p *modules.Program) Stats {
	return Stats{
		Query:      q.Name,
		Primitives: q.NumPrimitives(),
		Modules:    p.NumOps(),
		Stages:     p.NumStages(),
		Rules:      p.RuleCount(),
	}
}

// String renders the stats row.
func (s Stats) String() string {
	return fmt.Sprintf("%-24s prims=%-3d modules=%-3d stages=%-3d rules=%-3d",
		s.Query, s.Primitives, s.Modules, s.Stages, s.Rules)
}

// SonataEstimate models Sonata's compilation of the same query: one
// logical match-action table per stateless primitive, two per stateful
// primitive (hash + counter), chained sequentially — the estimation
// methodology of Jose et al. the paper cites for Fig. 15's comparison.
func SonataEstimate(q *query.Query) (tables, stages int) {
	for _, b := range q.Branches {
		for _, pr := range b.Prims {
			switch pr.Kind {
			case query.KindFilter, query.KindMap:
				tables++
				stages++
			case query.KindDistinct, query.KindReduce:
				tables += 2
				stages += 2
			}
		}
	}
	if q.Merge != nil {
		// The join/zip of branch results.
		tables += 2
		stages += 2
	}
	return tables, stages
}
