// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment is a pure function from parameters to
// a result struct whose String method prints the same rows or series the
// paper reports; cmd/newton-bench runs them from the command line and
// the repository-root benchmarks wrap them in testing.B.
//
// Absolute numbers differ from the paper's Tofino testbed — the
// substrate here is a behavioural simulator — but each experiment
// preserves the published shape: who wins, by roughly what factor, and
// where crossovers fall. EXPERIMENTS.md records paper-vs-measured for
// every entry.
package experiments

import (
	"fmt"
	"strings"
)

// table renders aligned text tables for experiment output.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.3f%%", v*100) }
func sci(v float64) string { return fmt.Sprintf("%.2e", v) }
func i2s(v int) string     { return fmt.Sprintf("%d", v) }
