// Quickstart: one switch, one intent.
//
// This example builds a single-switch network, expresses the intent
// "tell me which hosts are under SYN-flood attack" as a stream query,
// installs it at runtime, replays a synthetic workload containing a
// flood, and prints the victims the data plane reports.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/newton-net/newton"
)

func main() {
	// A line topology with one switch between two hosts.
	topo, h1, h2 := newton.LinearTopology(1)
	net, err := newton.NewNetwork(topo, newton.NetworkConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ctl := newton.NewController(net, 42)

	// The intent, written with the Spark-style builder. (newton.Q6(30)
	// builds the paper's three-branch version; this is the single-branch
	// form for clarity.)
	q := newton.NewQuery("syn_flood_victims").
		Describe("hosts receiving more than 40 SYNs per 100ms window").
		Filter(newton.Eq(newton.FieldProto, newton.ProtoTCP),
			newton.Eq(newton.FieldTCPFlags, newton.FlagSYN)).
		Map(newton.FieldDstIP).
		ReduceCount(newton.FieldDstIP).
		FilterResultGt(40).
		Build()

	dep, delay, err := ctl.Install(newton.Deploy{Query: q})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %q as query %d in %v (%d table rules) — no reboot, no packet loss\n",
		q.Name, dep.QID, delay.Round(time.Microsecond), dep.Rules)

	// A workload: realistic background traffic plus a SYN flood against
	// 10.0.0.170.
	victim := uint32(0x0A0000AA)
	tr := newton.GenerateTrace(newton.TraceConfig{Seed: 7, Flows: 500, Duration: 300 * time.Millisecond},
		newton.SYNFlood{Victim: victim, Packets: 600})
	for _, pkt := range tr.Packets {
		net.Deliver(pkt, h1, h2)
	}
	delivered, dropped := net.Stats()
	fmt.Printf("replayed %d packets (%d delivered, %d dropped)\n", len(tr.Packets), delivered, dropped)

	// The switch mirrors one report per flagged victim per window.
	col := newton.NewCollector(q.Window, q.ReportKeys())
	col.AddAll(net.DrainReports())
	fmt.Printf("data plane mirrored %d reports\n", col.Raw)
	for key := range col.FlaggedKeys() {
		fmt.Printf("  SYN-flood victim: %d.%d.%d.%d\n",
			key>>24&0xFF, key>>16&0xFF, key>>8&0xFF, key&0xFF)
	}

	// And the query leaves as easily as it arrived.
	rm, err := ctl.Remove(dep.QID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removed query %d in %v\n", dep.QID, rm.Round(time.Microsecond))
}
