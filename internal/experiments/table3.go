package experiments

import (
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
)

// Table3Result reproduces Table 3: hardware resources consumed by
// Newton, normalized by the resource usage of switch.p4, at stage,
// module, and primitive granularity. Modules are sized for 256 rules, so
// a primitive amortizes 1/256 of each module suite it touches.
type Table3Result struct {
	Base dataplane.Resources // switch.p4 usage (normalization base)

	PerStageBaseline dataplane.Resources // naïve layout (one module/stage, averaged)
	PerStageCompact  dataplane.Resources // compact layout (one suite per set per stage)

	PerModule [modules.NumKinds]dataplane.Resources

	// PerPrimitive holds filter, map, reduce, distinct in Table 3 order.
	PerPrimitive [4]dataplane.Resources
	PrimNames    [4]string
}

// Table3 computes the resource table from the module model.
func Table3() *Table3Result {
	r := &Table3Result{Base: modules.SwitchP4Usage()}
	suite := modules.SuiteResources()
	r.PerStageCompact = suite.Utilization(r.Base)
	r.PerStageBaseline = suite.Scale(0.25).Utilization(r.Base)
	for k := modules.Kind(0); k < modules.NumKinds; k++ {
		r.PerModule[k] = modules.ModuleResources(k).Utilization(r.Base)
	}
	// Primitive costs: suites touched × suite resources, amortized over
	// the 256 rules each module accommodates. Filters and maps touch one
	// suite; reduce touches one per Count-Min row (2); distinct one per
	// Bloom hash (3).
	amortize := func(suites float64) dataplane.Resources {
		return suite.Scale(suites / float64(modules.DefaultRulesPerModule)).Utilization(r.Base)
	}
	r.PrimNames = [4]string{
		"filter(pkt.tcp.flags==2)",
		"map(pkt=>(pkt.dip))",
		"reduce(keys=(pkt.dip),f=sum)",
		"distinct(keys=(pkt.dip,pkt.sip))",
	}
	r.PerPrimitive[0] = amortize(1)
	r.PerPrimitive[1] = amortize(1)
	r.PerPrimitive[2] = amortize(2)
	r.PerPrimitive[3] = amortize(3)
	return r
}

// String renders the table in the paper's layout.
func (r *Table3Result) String() string {
	t := &table{header: []string{"Category", "Metric",
		"Crossbar", "SRAM", "TCAM", "VLIW", "Hash Bits", "SALU", "Gateway"}}
	row := func(cat, metric string, res dataplane.Resources) {
		t.add(cat, metric,
			pct(res[dataplane.Crossbar]), pct(res[dataplane.SRAM]),
			pct(res[dataplane.TCAM]), pct(res[dataplane.VLIW]),
			pct(res[dataplane.HashBits]), pct(res[dataplane.SALU]),
			pct(res[dataplane.Gateway]))
	}
	row("Per-stage", "Baseline", r.PerStageBaseline)
	row("Per-stage", "Compact Module Layout", r.PerStageCompact)
	names := [modules.NumKinds]string{"Field Selection", "Hash Calculation", "State Bank", "Result Process"}
	for k := modules.Kind(0); k < modules.NumKinds; k++ {
		row("Per-module", names[k], r.PerModule[k])
	}
	for i, n := range r.PrimNames {
		row("Per-primitive", n, r.PerPrimitive[i])
	}
	return "Table 3: hardware resources consumed by Newton (normalized by switch.p4)\n" + t.String()
}
