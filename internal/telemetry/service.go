package telemetry

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/sketch"
	"github.com/newton-net/newton/internal/wire"
)

// ServiceConfig parameterizes the analyzer service.
type ServiceConfig struct {
	// Window is the query evaluation window used to deduplicate
	// threshold alerts across switches (default 100 ms, the paper's
	// epoch).
	Window time.Duration
	// KeepEpochs bounds how many merged epochs stay resident per bank
	// (default 16); older epochs are pruned as new ones arrive.
	KeepEpochs int
	// KeepAlertWindows bounds the alert-dedup memory: dedup keys whose
	// window trails the newest seen window by more than this many
	// windows are compacted away (default 64). Retention is what keeps
	// analyzer heap flat under many keys — a late duplicate older than
	// the horizon would re-alert, but its window has long been judged.
	KeepAlertWindows int
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.KeepEpochs <= 0 {
		c.KeepEpochs = 16
	}
	if c.KeepAlertWindows <= 0 {
		c.KeepAlertWindows = 64
	}
	return c
}

// bankKey identifies one sketch row of one query network-wide.
type bankKey struct {
	qid, part, branch, row int
}

// MergedBank is the network-wide merge of one sketch row across every
// switch that exported it for one epoch: Count-Min rows sum counter-wise
// (each packet increments exactly one switch's counter, so the sum is
// the row a single switch seeing all traffic would hold), Bloom rows OR
// bitwise (a key is seen network-wide iff some switch saw it).
type MergedBank struct {
	Kind    modules.BankKind
	Algo    sketch.Algo
	Seed    uint32
	Range   uint32
	KeyMask fields.Mask
	Width   uint32

	// Values are uint64 so counter sums over many switches cannot wrap
	// the registers' 32 bits.
	Values   []uint64
	Switches []string // switch IDs merged in, in arrival order

	// Partial provenance, filled when the bank is read back (MergedRows):
	// true when an expected switch contributed no snapshot for this
	// epoch, with the missing switches named. A partial merge
	// undercounts every key the missing member owns — consumers must
	// treat it as a lower bound, never as the network-wide truth.
	Partial bool
	Missing []string

	// Transition marks an epoch whose banks straddle a width resize:
	// the query's switches restarted with empty banks mid-window (or
	// two geometries reached the same epoch), so the merge undercounts
	// and is flagged Partial even with every contributor present.
	Transition bool
}

// slot computes the key's index in the merged row, replaying the
// data-plane H module.
func (m *MergedBank) slot(keyBytes []byte) uint32 {
	bs := modules.BankSnapshot{Algo: m.Algo, Seed: m.Seed, Range: m.Range, Width: m.Width}
	return bs.Slot(keyBytes)
}

// alertKey deduplicates threshold alerts network-wide: one alert per
// query, window, and monitored key, whichever switch reports first.
type alertKey struct {
	qid    int
	window uint64
	key    string // masked key bytes
}

// EventKind classifies subscription events.
type EventKind int

const (
	// EventAlert is a network-wide-deduplicated threshold alert.
	EventAlert EventKind = iota
	// EventSnapshotMerged fires when an agent's epoch snapshot has been
	// merged into the network-wide banks.
	EventSnapshotMerged
)

// Event is one subscription message.
type Event struct {
	Kind EventKind

	// Alert fields (EventAlert): the first report of this (query,
	// window, key) network-wide, plus the window it fell in.
	Report dataplane.Report
	Window uint64

	// Merge fields (EventSnapshotMerged).
	SwitchID string
	Epoch    uint32
	Banks    int
}

// agentInfo is the per-stream accounting of one connected agent.
type agentInfo struct {
	Reports   uint64
	Snapshots uint64
	Bye       *rpc.ExportStats // final counters, once the agent said bye

	// Liveness: when the agent's stream last produced a frame, and how
	// many streams it currently has open (normally 0 or 1; an exporter
	// reconnect can briefly overlap).
	LastSeen time.Time
	Streams  int
	everUp   bool

	// Epoch-gap detection: the highest snapshot epoch seen, and how
	// many epochs were skipped (a reset exporter re-syncs at its
	// current epoch; everything between is telemetry that never
	// arrived).
	lastEpoch uint32
	hasEpoch  bool
	Gaps      uint64

	wire WireInfo // per-stream codec and bytes-on-wire accounting
}

// WireInfo is the analyzer's view of one agent stream's wire usage.
type WireInfo struct {
	// Codec is the stream's negotiated encoding ("json" or "binary").
	Codec string
	// Frames and Bytes count everything read off the stream, frame
	// headers included, for either codec.
	Frames, Bytes uint64
	// RawBytes is what the binary frames would have cost without
	// compression (decompressed payload plus header); Bytes/RawBytes is
	// the stream's compression ratio. Zero on JSON streams.
	RawBytes uint64
	// CompressedFrames counts binary frames that arrived flate-packed.
	CompressedFrames uint64
	// DeltaFrames and KeyframeFrames split the snapshot frames by
	// encoding; DeltaFrames/(DeltaFrames+KeyframeFrames) is the stream's
	// delta hit-rate.
	DeltaFrames, KeyframeFrames uint64
	// ChainBreaks counts delta snapshots dropped because their base
	// epoch was not held (the stream resynced at the next keyframe).
	ChainBreaks uint64
}

// Service is the analyzer-side half of the telemetry plane: a
// concurrent stream server that ingests many agents' report batches and
// epoch snapshots, maintains network-wide merged sketch banks per
// (query, epoch), deduplicates threshold alerts across switches, and
// fans results out to subscribers over channels.
type Service struct {
	cfg ServiceConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	agents map[string]*agentInfo
	merged map[bankKey]map[uint32]*MergedBank // bank -> epoch -> merge

	// Partial-epoch bookkeeping: which switches are expected to
	// contribute snapshots per query (set explicitly by the controller
	// for sharded deploys, otherwise learned from who has contributed),
	// and which actually did per (query, epoch).
	expected map[int]map[string]bool
	pinned   map[int]bool // expected[qid] was set explicitly; stop learning
	contrib  map[int]map[uint32]map[string]bool

	// Alert dedup with bounded retention: maxWindow tracks the newest
	// window seen, and once seen grows past seenCompactAt the keys
	// older than KeepAlertWindows are compacted away (amortized — the
	// threshold doubles with the surviving population, so compaction
	// cost stays O(1) per report).
	seen          map[alertKey]bool
	maxWindow     uint64
	seenCompactAt int
	pending       []dataplane.Report // deduped alerts not yet drained
	subs          map[int]chan Event
	nextSub       int

	// qEpoch tracks the highest snapshot epoch seen per query; when a
	// query's epoch advances, the superseded epoch is judged final and
	// counted partial if expected contributors never delivered it.
	qEpoch        map[int]uint32
	partialEpochs uint64

	// Width-transition bookkeeping (NoteResize): a resized query's
	// agents restart with empty banks mid-window, so the first epoch
	// merged after the resize mixes pre- and post-resize traffic and
	// must read Partial. resizePending marks queries whose transition
	// epoch has not arrived yet; transition records the flagged epochs.
	resizePending map[int]bool
	transition    map[int]map[uint32]bool

	totalReports     uint64
	dupAlerts        uint64
	totalSnapshots   uint64
	subDropped       uint64
	reconnects       uint64
	epochGaps        uint64
	widthTransitions uint64
	geomConflicts    uint64
}

// NewService builds an analyzer service.
func NewService(cfg ServiceConfig) *Service {
	return &Service{
		cfg:           cfg.withDefaults(),
		conns:         map[net.Conn]struct{}{},
		agents:        map[string]*agentInfo{},
		merged:        map[bankKey]map[uint32]*MergedBank{},
		expected:      map[int]map[string]bool{},
		pinned:        map[int]bool{},
		contrib:       map[int]map[uint32]map[string]bool{},
		seen:          map[alertKey]bool{},
		seenCompactAt: minSeenCompact,
		subs:          map[int]chan Event{},
		qEpoch:        map[int]uint32{},
		resizePending: map[int]bool{},
		transition:    map[int]map[uint32]bool{},
	}
}

// Serve accepts agent streams until the listener closes (or Close).
func (s *Service) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.HandleConn(conn)
		}()
	}
}

// HandleConn ingests one agent stream (exported so tests and in-process
// deployments can wire net.Pipe ends directly). It returns when the
// stream ends; a clean bye or peer close returns nil.
func (s *Service) HandleConn(conn net.Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return net.ErrClosed
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	cr := &countReader{r: conn}
	var hello Frame
	if err := rpc.ReadFrame(cr, &hello); err != nil {
		return fmt.Errorf("telemetry: reading hello: %w", err)
	}
	if hello.Type != FrameHello || hello.SwitchID == "" {
		return fmt.Errorf("telemetry: stream did not open with hello (got %q)", hello.Type)
	}
	// Codec negotiation: a hello proposing the binary wire protocol is
	// acked (granting the upgrade) and the stream switches framing. A
	// plain hello is from a JSON-only exporter that never reads the
	// stream — writing anything to it would deadlock an unbuffered pipe,
	// so the ack is strictly ask-gated.
	binary := hello.Wire >= wire.Version1
	if binary {
		ack := Frame{Type: FrameHelloAck, SwitchID: hello.SwitchID, Wire: wire.Version1}
		if err := rpc.WriteFrame(conn, &ack); err != nil {
			return fmt.Errorf("telemetry: hello-ack to %s: %w", hello.SwitchID, err)
		}
	}
	agent := s.streamUp(hello.SwitchID)
	defer s.streamDown(agent)
	s.mu.Lock()
	agent.wire.Codec = CodecJSON.String()
	if binary {
		agent.wire.Codec = CodecBinary.String()
	}
	s.mu.Unlock()

	if binary {
		return s.binaryLoop(cr, agent, hello.SwitchID)
	}
	return s.jsonLoop(cr, agent, hello.SwitchID)
}

// jsonLoop ingests a legacy JSON stream until it ends.
func (s *Service) jsonLoop(cr *countReader, agent *agentInfo, switchID string) error {
	for {
		var f Frame
		if err := rpc.ReadFrame(cr, &f); err != nil {
			if cleanStreamErr(err) {
				return nil
			}
			return fmt.Errorf("telemetry: agent %s: %w", switchID, err)
		}
		s.touch(agent)
		s.noteWire(agent, cr.take(), 0)
		switch f.Type {
		case FrameReports:
			s.ingestReports(agent, f.Reports)
		case FrameSnapshot:
			s.ingestSnapshot(agent, switchID, f.Epoch, f.Snapshots)
		case FrameBye:
			s.mu.Lock()
			agent.Bye = f.Stats
			s.mu.Unlock()
			return nil
		default:
			return fmt.Errorf("telemetry: agent %s: unknown frame %q", switchID, f.Type)
		}
	}
}

// binaryLoop ingests a stream that negotiated the binary wire
// protocol. Each stream carries its own snapshot decoder: delta chains
// are per-stream state, grounded by the keyframe the exporter sends
// first (and after every reconnect, on a fresh stream).
func (s *Service) binaryLoop(cr *countReader, agent *agentInfo, switchID string) error {
	var dec wire.SnapshotDecoder
	for {
		hdr, payload, err := wire.ReadFrame(cr)
		if err != nil {
			if cleanStreamErr(err) {
				return nil
			}
			return fmt.Errorf("telemetry: agent %s: %w", switchID, err)
		}
		s.touch(agent)
		raw := uint64(len(payload)) + wire.HeaderSize
		if hdr.Flags&wire.FlagCompressed != 0 {
			if payload, err = wire.Decompress(payload); err != nil {
				return fmt.Errorf("telemetry: agent %s: %w", switchID, err)
			}
			raw = uint64(len(payload)) + wire.HeaderSize
			s.mu.Lock()
			agent.wire.CompressedFrames++
			s.mu.Unlock()
		}
		s.noteWire(agent, cr.take(), raw)
		switch hdr.Kind {
		case wire.KindReports:
			rs, err := wire.DecodeReports(payload, switchID)
			if err != nil {
				return fmt.Errorf("telemetry: agent %s: %w", switchID, err)
			}
			s.ingestReports(agent, rs)
		case wire.KindSnapshot:
			epoch, banks, err := dec.Decode(payload)
			if errors.Is(err, wire.ErrDeltaBase) {
				// A frame this stream never saw separates us from the delta's
				// base. Drop it — the encoder's next keyframe re-grounds the
				// chain — and count the break.
				s.mu.Lock()
				agent.wire.ChainBreaks++
				s.mu.Unlock()
				continue
			}
			if err != nil {
				return fmt.Errorf("telemetry: agent %s: %w", switchID, err)
			}
			s.mu.Lock()
			if hdr.Flags&wire.FlagDelta != 0 {
				agent.wire.DeltaFrames++
			} else {
				agent.wire.KeyframeFrames++
			}
			s.mu.Unlock()
			s.ingestSnapshot(agent, switchID, epoch, banks)
		case wire.KindBye:
			st, err := wire.DecodeBye(payload)
			if err != nil {
				return fmt.Errorf("telemetry: agent %s: %w", switchID, err)
			}
			s.mu.Lock()
			agent.Bye = &st
			s.mu.Unlock()
			return nil
		default:
			return fmt.Errorf("telemetry: agent %s: unknown binary frame kind %v", switchID, hdr.Kind)
		}
	}
}

// countReader counts stream bytes as they are read, so per-agent wire
// accounting covers both codecs, headers included.
type countReader struct {
	r io.Reader
	n uint64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += uint64(n)
	return n, err
}

// take returns and clears the bytes read since the last call.
func (cr *countReader) take() uint64 {
	n := cr.n
	cr.n = 0
	return n
}

// noteWire folds one frame's wire bytes into the agent's
// accounting. rawBytes is the uncompressed cost (binary streams only).
func (s *Service) noteWire(agent *agentInfo, wireBytes, rawBytes uint64) {
	s.mu.Lock()
	agent.wire.Frames++
	agent.wire.Bytes += wireBytes
	agent.wire.RawBytes += rawBytes
	s.mu.Unlock()
}

// streamUp registers a new stream for the switch: its first ever is a
// connect, any later one (after its stream count hit zero) a reconnect.
func (s *Service) streamUp(id string) *agentInfo {
	a := s.registerAgent(id)
	s.mu.Lock()
	if a.everUp && a.Streams == 0 {
		s.reconnects++
	}
	a.everUp = true
	a.Streams++
	a.LastSeen = time.Now()
	s.mu.Unlock()
	return a
}

func (s *Service) streamDown(a *agentInfo) {
	s.mu.Lock()
	a.Streams--
	s.mu.Unlock()
}

// touch stamps agent liveness on every ingested frame.
func (s *Service) touch(a *agentInfo) {
	s.mu.Lock()
	a.LastSeen = time.Now()
	s.mu.Unlock()
}

func cleanStreamErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrClosedPipe)
}

func (s *Service) registerAgent(id string) *agentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agents[id]
	if a == nil {
		a = &agentInfo{}
		s.agents[id] = a
	}
	return a
}

// ingestReports deduplicates threshold alerts network-wide: reports for
// the same (query, window, key) from different switches — or repeated
// crossings within a window — collapse to the first arrival.
func (s *Service) ingestReports(agent *agentInfo, rs []dataplane.Report) {
	windowNs := uint64(s.cfg.Window)
	var fresh []Event
	s.mu.Lock()
	agent.Reports += uint64(len(rs))
	s.totalReports += uint64(len(rs))
	for _, r := range rs {
		w := r.TS / windowNs
		if w > s.maxWindow {
			s.maxWindow = w
		}
		key := alertKey{qid: r.QueryID, window: w, key: string(r.KeyMask.Bytes(&r.Keys, nil))}
		if s.seen[key] {
			s.dupAlerts++
			continue
		}
		s.seen[key] = true
		s.pending = append(s.pending, r)
		fresh = append(fresh, Event{Kind: EventAlert, Report: r, Window: w})
	}
	s.compactSeenLocked()
	s.publishLocked(fresh)
	s.mu.Unlock()
}

// minSeenCompact is the dedup-map population below which compaction is
// never attempted — small maps are cheaper to keep than to sweep.
const minSeenCompact = 8192

// compactSeenLocked bounds the alert-dedup memory: once the map
// outgrows its amortization threshold, keys older than the
// KeepAlertWindows horizon are dropped. The threshold then doubles
// with the surviving population, so each key is visited O(1) times.
func (s *Service) compactSeenLocked() {
	if len(s.seen) < s.seenCompactAt || s.maxWindow < uint64(s.cfg.KeepAlertWindows) {
		return
	}
	horizon := s.maxWindow - uint64(s.cfg.KeepAlertWindows)
	for k := range s.seen {
		if k.window < horizon {
			delete(s.seen, k)
		}
	}
	s.seenCompactAt = max(minSeenCompact, 2*len(s.seen))
}

// ingestSnapshot merges one agent's epoch snapshot into the
// network-wide banks.
func (s *Service) ingestSnapshot(agent *agentInfo, switchID string, epoch uint32, banks []modules.BankSnapshot) {
	s.mu.Lock()
	agent.Snapshots++
	s.totalSnapshots++
	// Epoch-gap detection: an exporter that reconnects resumes at its
	// switch's current epoch; anything skipped in between is telemetry
	// that never arrived.
	if agent.hasEpoch && epoch > agent.lastEpoch+1 {
		gap := uint64(epoch - agent.lastEpoch - 1)
		agent.Gaps += gap
		s.epochGaps += gap
	}
	if !agent.hasEpoch || epoch > agent.lastEpoch {
		agent.lastEpoch, agent.hasEpoch = epoch, true
	}
	s.recordContribLocked(switchID, epoch, banks)
	// Partial-result detection: once any contributor moves a query to a
	// newer epoch, the superseded epoch will not receive more snapshots
	// in practice — judge it, and count it partial if expected
	// contributors are still missing. (A heuristic: a very late straggler
	// could still arrive and merge, but the count flags the gap when it
	// mattered.)
	for i := range banks {
		qid := banks[i].QueryID
		prev, seen := s.qEpoch[qid]
		if !seen || epoch > prev {
			if seen && len(s.missingLocked(qid, prev)) > 0 {
				s.partialEpochs++
			}
			s.qEpoch[qid] = epoch
		}
		// A controller-announced resize lands on the first snapshot at
		// the query's epoch frontier: that epoch's banks filled from
		// mid-window restarts and must carry Partial provenance.
		if s.resizePending[qid] && epoch == s.qEpoch[qid] {
			delete(s.resizePending, qid)
			s.markTransitionLocked(qid, epoch)
		}
	}
	for i := range banks {
		b := &banks[i]
		bk := bankKey{qid: b.QueryID, part: b.Part, branch: b.Branch, row: b.Row}
		byEpoch := s.merged[bk]
		if byEpoch == nil {
			byEpoch = map[uint32]*MergedBank{}
			s.merged[bk] = byEpoch
		}
		m := byEpoch[epoch]
		if m == nil {
			m = &MergedBank{
				Kind: b.Kind, Algo: b.Algo, Seed: b.Seed, Range: b.Range,
				KeyMask: b.KeyMask, Width: b.Width,
				Values: make([]uint64, len(b.Values)),
			}
			byEpoch[epoch] = m
		}
		if len(b.Values) != len(m.Values) {
			// Geometry conflict: a mid-window width change put two bank
			// shapes into the same epoch. Merging them would silently mix
			// widths, and the old silent skip hid the gap entirely —
			// instead the later geometry replaces the resident one and
			// the epoch is flagged as a width transition, so provenance
			// says exactly why the merge cannot be trusted.
			s.geomConflicts++
			s.markTransitionLocked(b.QueryID, epoch)
			m = &MergedBank{
				Kind: b.Kind, Algo: b.Algo, Seed: b.Seed, Range: b.Range,
				KeyMask: b.KeyMask, Width: b.Width,
				Values: make([]uint64, len(b.Values)),
			}
			byEpoch[epoch] = m
		}
		if b.Kind == modules.BankBloomRow {
			for j, v := range b.Values {
				m.Values[j] |= uint64(v)
			}
		} else {
			for j, v := range b.Values {
				m.Values[j] += uint64(v)
			}
		}
		m.Switches = append(m.Switches, switchID)
		s.pruneLocked(bk, byEpoch)
	}
	s.publishLocked([]Event{{
		Kind: EventSnapshotMerged, SwitchID: switchID, Epoch: epoch, Banks: len(banks),
	}})
	s.mu.Unlock()
}

// recordContribLocked notes that switchID delivered a snapshot covering
// each query at epoch, and — unless the controller pinned the expected
// membership — learns the switch as an expected contributor going
// forward.
func (s *Service) recordContribLocked(switchID string, epoch uint32, banks []modules.BankSnapshot) {
	qids := map[int]bool{}
	for i := range banks {
		qids[banks[i].QueryID] = true
	}
	for qid := range qids {
		if !s.pinned[qid] {
			exp := s.expected[qid]
			if exp == nil {
				exp = map[string]bool{}
				s.expected[qid] = exp
			}
			exp[switchID] = true
		}
		byEpoch := s.contrib[qid]
		if byEpoch == nil {
			byEpoch = map[uint32]map[string]bool{}
			s.contrib[qid] = byEpoch
		}
		got := byEpoch[epoch]
		if got == nil {
			got = map[string]bool{}
			byEpoch[epoch] = got
		}
		got[switchID] = true
		// Bound contribution history like the merged banks.
		if len(byEpoch) > s.cfg.KeepEpochs {
			eps := make([]uint32, 0, len(byEpoch))
			for e := range byEpoch {
				eps = append(eps, e)
			}
			sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
			for _, e := range eps[:len(eps)-s.cfg.KeepEpochs] {
				delete(byEpoch, e)
			}
		}
	}
}

// SetExpected pins the set of switches that must contribute snapshots
// for query qid — the controller calls it after a deploy, so partial
// epochs name exactly the missing deploy members instead of relying on
// who happened to show up first. A nil or empty set unpins and clears
// the query (used on Remove), releasing its merged banks and epoch
// bookkeeping too: per-bank KeepEpochs pruning only bounds live
// queries, so removed-query state would otherwise stay resident
// forever on a long-lived analyzer.
func (s *Service) SetExpected(qid int, switches []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(switches) == 0 {
		delete(s.expected, qid)
		delete(s.pinned, qid)
		delete(s.contrib, qid)
		delete(s.qEpoch, qid)
		delete(s.resizePending, qid)
		delete(s.transition, qid)
		for bk := range s.merged {
			if bk.qid == qid {
				delete(s.merged, bk)
			}
		}
		return
	}
	exp := make(map[string]bool, len(switches))
	for _, n := range switches {
		exp[n] = true
	}
	s.expected[qid] = exp
	s.pinned[qid] = true
}

// NoteResize tells the analyzer that query qid's deployment was just
// reinstalled at a new sketch width with the same qid (the controller
// calls it from ResizeWidth, right before re-pinning SetExpected). The
// next snapshot at the query's epoch frontier marks that epoch as a
// width transition: its banks filled from mid-window restarts, so the
// merge reads Partial and provenance never silently mixes widths.
func (s *Service) NoteResize(qid int) {
	s.mu.Lock()
	s.resizePending[qid] = true
	s.mu.Unlock()
}

// markTransitionLocked flags (qid, epoch) as a width transition,
// bounding the per-query set like the merged banks.
func (s *Service) markTransitionLocked(qid int, epoch uint32) {
	set := s.transition[qid]
	if set == nil {
		set = map[uint32]bool{}
		s.transition[qid] = set
	}
	if set[epoch] {
		return
	}
	set[epoch] = true
	s.widthTransitions++
	if len(set) > s.cfg.KeepEpochs {
		eps := make([]uint32, 0, len(set))
		for e := range set {
			eps = append(eps, e)
		}
		sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
		for _, e := range eps[:len(eps)-s.cfg.KeepEpochs] {
			delete(set, e)
		}
	}
}

// transitionLocked reports whether (qid, epoch) straddles a resize.
func (s *Service) transitionLocked(qid int, epoch uint32) bool {
	return s.transition[qid][epoch]
}

// missingLocked returns the expected contributors of qid that delivered
// no snapshot for epoch, sorted.
func (s *Service) missingLocked(qid int, epoch uint32) []string {
	exp := s.expected[qid]
	if len(exp) == 0 {
		return nil
	}
	got := s.contrib[qid][epoch]
	var out []string
	for n := range exp {
		if !got[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// EpochStatus reports whether the merged view of query qid at epoch is
// complete: Partial is true when an expected switch contributed no
// snapshot (Missing naming them) or when the epoch straddles a width
// resize — a transition epoch's banks filled from mid-window restarts,
// so it undercounts even with every contributor present. Merged counts
// the switches that did contribute.
func (s *Service) EpochStatus(qid int, epoch uint32) (partial bool, missing []string, merged int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	missing = s.missingLocked(qid, epoch)
	return len(missing) > 0 || s.transitionLocked(qid, epoch), missing, len(s.contrib[qid][epoch])
}

// AgentLiveness reports when switch id's stream last produced a frame
// and whether a stream is currently open.
func (s *Service) AgentLiveness(id string) (lastSeen time.Time, connected bool, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agents[id]
	if a == nil {
		return time.Time{}, false, false
	}
	return a.LastSeen, a.Streams > 0, true
}

// pruneLocked evicts the oldest merged epochs of a bank beyond the
// retention bound.
func (s *Service) pruneLocked(bk bankKey, byEpoch map[uint32]*MergedBank) {
	if len(byEpoch) <= s.cfg.KeepEpochs {
		return
	}
	eps := make([]uint32, 0, len(byEpoch))
	for e := range byEpoch {
		eps = append(eps, e)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	for _, e := range eps[:len(eps)-s.cfg.KeepEpochs] {
		delete(byEpoch, e)
	}
}

// publishLocked fans events out to subscribers without blocking ingest:
// a subscriber whose buffer is full loses the event (counted).
func (s *Service) publishLocked(evs []Event) {
	for _, ev := range evs {
		for _, ch := range s.subs {
			select {
			case ch <- ev:
			default:
				s.subDropped++
			}
		}
	}
}

// Subscribe registers a result consumer. Events arrive on the returned
// channel (buffered to buf, default 64); cancel unregisters and closes
// it. Ingest never blocks on a slow subscriber — overflow events are
// dropped and counted in SubscriberDrops.
func (s *Service) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Event, buf)
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
		s.mu.Unlock()
	}
	return ch, cancel
}

// Estimate answers a network-wide point query from the merged Count-Min
// banks of (query, branch) at the given epoch: the minimum over merged
// rows at the key's slots — exactly the estimate a single switch holding
// all the traffic would produce. The keys vector carries the monitored
// entity (e.g. the victim DstIP); ok is false when no merged CMS rows
// exist for that (query, branch, epoch).
func (s *Service) Estimate(qid, branch int, epoch uint32, keys *fields.Vector) (est uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	est = ^uint64(0)
	for bk, byEpoch := range s.merged {
		if bk.qid != qid || bk.branch != branch {
			continue
		}
		m := byEpoch[epoch]
		if m == nil || m.Kind != modules.BankCMSRow {
			continue
		}
		kb := m.KeyMask.Bytes(keys, nil)
		v := m.Values[m.slot(kb)]
		if v < est {
			est = v
			ok = true
		}
	}
	if !ok {
		return 0, false
	}
	return est, true
}

// SeenDistinct reports whether the merged network-wide Bloom banks of
// (query, branch) at epoch contain the key — true iff every merged
// Bloom row has the key's bit set on some switch.
func (s *Service) SeenDistinct(qid, branch int, epoch uint32, keys *fields.Vector) (seen, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen = true
	for bk, byEpoch := range s.merged {
		if bk.qid != qid || bk.branch != branch {
			continue
		}
		m := byEpoch[epoch]
		if m == nil || m.Kind != modules.BankBloomRow {
			continue
		}
		kb := m.KeyMask.Bytes(keys, nil)
		if m.Values[m.slot(kb)] == 0 {
			seen = false
		}
		ok = true
	}
	if !ok {
		return false, false
	}
	return seen, true
}

// MergedRows returns the merged banks of (query, branch) at epoch, row
// order, for inspection.
func (s *Service) MergedRows(qid, branch int, epoch uint32) []*MergedBank {
	s.mu.Lock()
	defer s.mu.Unlock()
	type rowBank struct {
		row int
		m   *MergedBank
	}
	var rows []rowBank
	for bk, byEpoch := range s.merged {
		if bk.qid != qid || bk.branch != branch {
			continue
		}
		if m := byEpoch[epoch]; m != nil {
			rows = append(rows, rowBank{bk.row, m})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].row < rows[j].row })
	missing := s.missingLocked(qid, epoch)
	transition := s.transitionLocked(qid, epoch)
	out := make([]*MergedBank, len(rows))
	for i, r := range rows {
		r.m.Partial = len(missing) > 0 || transition
		r.m.Missing = missing
		r.m.Transition = transition
		out[i] = r.m
	}
	return out
}

// DrainReports returns and clears the deduplicated alert reports
// accumulated since the last drain — the push-based replacement for the
// controller's per-agent DrainReports polling.
func (s *Service) DrainReports() []dataplane.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending
	s.pending = nil
	return out
}

// Stats summarizes the service's ingest accounting.
type ServiceStats struct {
	Agents          int
	LiveAgents      int    // agents with an open stream right now
	Reports         uint64 // raw reports ingested (pre-dedup)
	DuplicateAlerts uint64 // reports suppressed by network-wide dedup
	Snapshots       uint64 // snapshot frames merged
	SubscriberDrops uint64 // events lost to slow subscribers
	Reconnects      uint64 // agent streams re-established after a drop
	EpochGaps       uint64 // snapshot epochs skipped across all agents
	PartialEpochs   uint64 // superseded (query, epoch) merges missing expected contributors

	// Width-resize provenance accounting.
	WidthTransitions  uint64 // epochs flagged as straddling a sketch resize
	GeometryConflicts uint64 // snapshot banks whose shape conflicted with the resident merge

	// Wire accounting aggregated across agents.
	BinaryAgents int    // agents whose current/last stream negotiated the binary codec
	WireBytes    uint64 // stream bytes ingested, frame headers included
	RawBytes     uint64 // uncompressed cost of the binary frames ingested
	DeltaFrames  uint64 // snapshot frames that arrived delta-encoded
	ChainBreaks  uint64 // delta snapshots dropped for a missing base epoch
	DedupKeys    int    // alert-dedup keys resident (bounded by KeepAlertWindows compaction)
}

// Stats returns the current ingest counters.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := 0
	st := ServiceStats{
		Agents:            len(s.agents),
		Reports:           s.totalReports,
		DuplicateAlerts:   s.dupAlerts,
		Snapshots:         s.totalSnapshots,
		SubscriberDrops:   s.subDropped,
		Reconnects:        s.reconnects,
		EpochGaps:         s.epochGaps,
		PartialEpochs:     s.partialEpochs,
		WidthTransitions:  s.widthTransitions,
		GeometryConflicts: s.geomConflicts,
		DedupKeys:         len(s.seen),
	}
	for _, a := range s.agents {
		if a.Streams > 0 {
			live++
		}
		if a.wire.Codec == CodecBinary.String() {
			st.BinaryAgents++
		}
		st.WireBytes += a.wire.Bytes
		st.RawBytes += a.wire.RawBytes
		st.DeltaFrames += a.wire.DeltaFrames
		st.ChainBreaks += a.wire.ChainBreaks
	}
	st.LiveAgents = live
	return st
}

// AgentWire returns switch id's stream wire accounting: negotiated
// codec, bytes on the wire vs their uncompressed cost, and the delta
// snapshot hit/break counts.
func (s *Service) AgentWire(id string) (WireInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agents[id]
	if a == nil {
		return WireInfo{}, false
	}
	return a.wire, true
}

// ForgetAgent releases the per-agent bookkeeping for a switch that has
// been permanently removed from the fleet, so a long-lived analyzer
// does not hold one agents-map entry (plus learned expected-contributor
// membership) per switch it has ever seen. It refuses — returning
// false — while the agent still has a stream open: forgetting a live
// switch would silently reset its gap/liveness accounting. Pinned
// expected sets are left alone (the controller owns those via
// SetExpected); only learned memberships are unlearned.
func (s *Service) ForgetAgent(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agents[id]
	if a == nil || a.Streams > 0 {
		return false
	}
	delete(s.agents, id)
	for qid, exp := range s.expected {
		if !s.pinned[qid] {
			delete(exp, id)
		}
	}
	return true
}

// TrackedAgents returns how many switches the service currently holds
// per-agent bookkeeping for — the population behind the
// newton_analyzer_tracked_agents gauge.
func (s *Service) TrackedAgents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.agents)
}

// Contributors returns the switches that contributed at least one bank
// snapshot to qid across the retained epochs, sorted. This is the
// provenance surface a soak harness audits: a switch a tenant's query
// was never placed on must never appear here.
func (s *Service) Contributors(qid int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := map[string]bool{}
	for _, byEpoch := range s.contrib[qid] {
		for id := range byEpoch {
			set[id] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AgentStats returns the per-agent accounting for switch id (reports
// and snapshots ingested, plus the agent's final exporter counters once
// it said bye — the explicit loss account).
func (s *Service) AgentStats(id string) (agentReports, agentSnapshots uint64, bye *rpc.ExportStats, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agents[id]
	if a == nil {
		return 0, 0, nil, false
	}
	return a.Reports, a.Snapshots, a.Bye, true
}

// Close stops accepting, closes every live stream, and waits for
// handlers to drain. Subscriber channels are closed.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
	s.mu.Unlock()
	return nil
}
