// newton-ctl is a demonstration controller shell: it builds a simulated
// deployment, installs queries from the Table 2 catalog (or replays a
// pcap through them), and prints what the data plane reports.
//
// Usage:
//
//	newton-ctl -topology linear:3 -queries q1,q4,q6 -flows 2000
//	newton-ctl -topology fattree:4 -queries q4 -mode partition -stages 8
//	newton-ctl -queries q1 -pcap trace.pcap
//	newton-ctl -queries q1,q4 -obs-addr 127.0.0.1:9700   # then, elsewhere:
//	newton-ctl top -addr 127.0.0.1:9700
//	newton-ctl plan -topology linear:3 -queries q1,q4    # network-wide plan + diff
//	newton-ctl apply -topology linear:3 -queries q1,q4 -drain s2
//	newton-ctl status -topology linear:3 -queries q1,q4 -kill s2  # fleet health + self-healing demo
//	newton-ctl refine -target 0.25                       # closed-loop adaptive accuracy demo
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/obs"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
	"github.com/newton-net/newton/internal/version"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "top" {
		runTop(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && (os.Args[1] == "plan" || os.Args[1] == "apply") {
		runOrch(os.Args[1], os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "status" {
		runStatus(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "refine" {
		runRefine(os.Args[2:])
		return
	}
	var (
		topoSpec = flag.String("topology", "linear:3", "topology: linear:N, fattree:K, or isp")
		queries  = flag.String("queries", "q1", "comma-separated catalog queries (q1..q9)")
		expr     = flag.String("expr", "", "ad-hoc intent in the query DSL, e.g. 'filter(proto == udp) | reduce(dip, sum) | filter(result > 100)'")
		mode     = flag.String("mode", "replicate", "deployment mode: replicate, shard, partition")
		stages   = flag.Int("stages", 6, "stages per switch for partition mode")
		flows    = flag.Int("flows", 2000, "background flows of the generated workload")
		dur      = flag.Duration("duration", 300*time.Millisecond, "workload duration")
		seed     = flag.Int64("seed", 1, "workload seed")
		pcapPath = flag.String("pcap", "", "replay a pcap instead of generating a workload")
		attacks  = flag.Bool("attacks", true, "inject the full attack mix into generated workloads")

		obsAddr  = flag.String("obs-addr", "", "observability HTTP address for /metrics, /debug/vars, pprof; keeps serving after the run ('' = disabled)")
		showVers = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVers {
		fmt.Println(version.String("newton-ctl"))
		return
	}

	topo, h1, h2 := buildTopology(*topoSpec)
	net, err := netsim.New(topo, netsim.Config{Stages: 16, ArraySize: 1 << 15})
	if err != nil {
		log.Fatal(err)
	}
	ctl := controller.NewNewton(net, *seed)

	var obsSrv *obs.Server
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		version.RegisterObs(reg, "newton-ctl")
		ctl.RegisterObs(reg)
		obsSrv, err = obs.Serve(*obsAddr, reg)
		if err != nil {
			log.Fatalf("newton-ctl: obs: %v", err)
		}
		defer obsSrv.Close()
		fmt.Fprintf(os.Stderr, "newton-ctl: observability on http://%s/metrics\n", obsSrv.Addr())
	}

	m := map[string]controller.Mode{
		"replicate": controller.Replicate,
		"shard":     controller.Shard,
		"partition": controller.Partition,
	}[strings.ToLower(*mode)]

	var wanted []*query.Query
	if *expr != "" {
		q, err := query.Parse("adhoc", *expr)
		if err != nil {
			log.Fatal(err)
		}
		wanted = append(wanted, q)
	} else {
		for _, name := range strings.Split(*queries, ",") {
			q, err := query.ByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			wanted = append(wanted, q)
		}
	}
	installed := map[int]*query.Query{}
	for _, q := range wanted {
		spec := controller.Spec{Query: q, Mode: m}
		if m == controller.Partition {
			spec.StagesPerSwitch = *stages
		}
		dep, delay, err := ctl.Install(spec)
		if err != nil {
			log.Fatalf("installing %s: %v", q.Name, err)
		}
		installed[dep.QID] = q
		fmt.Printf("installed %-26s qid=%d mode=%-9s switches=%-3d rules=%-4d delay=%v\n",
			q.Name, dep.QID, dep.Mode, len(dep.Switches), dep.Rules, delay.Round(time.Microsecond))
	}

	var pkts []*packet.Packet
	if *pcapPath != "" {
		f, err := os.Open(*pcapPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		pkts, _, err = trace.ReadPcap(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d packets from %s\n", len(pkts), *pcapPath)
	} else {
		var overlays []trace.Overlay
		if *attacks {
			overlays = []trace.Overlay{
				trace.SYNFlood{Victim: 0x0A0000AA, Packets: 600},
				trace.UDPFlood{Victim: 0x0A0000AB, Sources: 150},
				trace.PortScan{Scanner: 0x0B000001, Victim: 0x0A0000AC, Ports: 200},
				trace.SSHBrute{Victim: 0x0A0000AD, Attempts: 100},
				trace.Slowloris{Victim: 0x0A0000AE, Conns: 150},
				trace.DNSNoTCP{Hosts: 4, Queries: 30},
				trace.SuperSpreader{Source: 0x0B000002, Fanout: 200},
			}
		}
		tr := trace.Generate(trace.Config{Seed: *seed, Flows: *flows, Duration: *dur}, overlays...)
		pkts = tr.Packets
		fmt.Printf("generated %d packets (%d flows, %v)\n", len(pkts), *flows, *dur)
	}

	for _, pkt := range pkts {
		net.Deliver(pkt, h1, h2)
	}
	delivered, dropped := net.Stats()
	fmt.Printf("delivered %d packets, dropped %d\n\n", delivered, dropped)

	reports := net.DrainReports()
	byQID := map[int][]int{}
	for i, r := range reports {
		byQID[r.QueryID] = append(byQID[r.QueryID], i)
	}
	for qid, idxs := range byQID {
		q := installed[qid]
		if q == nil {
			continue
		}
		col := analyzer.NewCollector(uint64(q.Window), q.ReportKeys())
		for _, i := range idxs {
			col.Add(reports[i])
		}
		fmt.Printf("%s: %d reports, flagged:", q.Name, col.Raw)
		for k := range col.FlaggedKeys() {
			fmt.Printf(" %d.%d.%d.%d", k>>24&0xFF, k>>16&0xFF, k>>8&0xFF, k&0xFF)
		}
		fmt.Println()
	}

	if obsSrv != nil {
		fmt.Fprintf(os.Stderr, "newton-ctl: run complete; observability stays up on http://%s (try `newton-ctl top -addr %s`, ctrl-c to exit)\n",
			obsSrv.Addr(), obsSrv.Addr())
		select {}
	}
}

func buildTopology(spec string) (*topology.Topology, int, int) {
	parts := strings.SplitN(spec, ":", 2)
	arg := 0
	if len(parts) == 2 {
		var err error
		arg, err = strconv.Atoi(parts[1])
		if err != nil {
			log.Fatalf("newton-ctl: bad topology %q", spec)
		}
	}
	switch parts[0] {
	case "linear":
		if arg == 0 {
			arg = 3
		}
		return topology.Linear(arg)
	case "fattree":
		if arg == 0 {
			arg = 4
		}
		topo := topology.FatTree(arg)
		hosts := topo.Hosts()
		return topo, hosts[0], hosts[len(hosts)-1]
	case "isp":
		topo := topology.ISPBackbone()
		// Attach hosts to two coastal POPs for end-to-end delivery.
		sf := topo.NodeByName("SanFrancisco")
		ny := topo.NodeByName("NewYork")
		h1 := topo.AddNode("h_sf", topology.Host)
		h2 := topo.AddNode("h_ny", topology.Host)
		topo.AddLink(sf, h1)
		topo.AddLink(ny, h2)
		return topo, h1, h2
	}
	log.Fatalf("newton-ctl: unknown topology %q", spec)
	return nil, 0, 0
}
