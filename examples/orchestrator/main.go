// Intent-driven network-wide deployment: the orchestrator.
//
// Three 8-stage switch agents form a linear fabric. The operator states
// two prioritized intents — a port-scan detector (Q4, 11 stages) and a
// new-TCP-connection counter (Q1, 6 stages) — and the orchestrator does
// the rest: Q4 cannot fit one device, so resilient placement (§5.2)
// slices it into two partitions across s1 and s2; Q1 fits and deploys
// whole. Both pass per-switch budget admission before any agent is
// contacted, and the transactional deploy registers each query's
// expected telemetry contributors so merged epochs carry honest
// provenance.
//
// Then s2 is drained for maintenance. The replan diffs against the
// recorded deployment and produces a delta that touches only s2 — s1's
// installed programs are never reinstalled — and the provenance
// expectations follow automatically.
//
// Run with: go run ./examples/orchestrator
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/orchestrator"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/scheduler"
	"github.com/newton-net/newton/internal/telemetry"
	"github.com/newton-net/newton/internal/topology"
)

func main() {
	// --- Analyzer side: the merging telemetry service.
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	svcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go svc.Serve(svcLn)

	// --- Switch side: one 8-stage agent per fabric switch, each pushing
	// telemetry to the analyzer.
	topo, _, _ := topology.Linear(3)
	names := []string{"s1", "s2", "s3"}
	clients := map[string]*rpc.Client{}
	engines := map[string]*modules.Engine{}
	budgets := map[string]scheduler.Budget{}
	for _, name := range names {
		layout, err := modules.NewLayout(modules.LayoutCompact, 8, 1<<14)
		if err != nil {
			log.Fatal(err)
		}
		eng := modules.NewEngine(layout)
		sw := dataplane.NewSwitch(name, 8, modules.StageCapacity())
		sw.Monitor = eng

		agent := rpc.NewAgent(sw, eng)
		exp, err := telemetry.Dial(svcLn.Addr().String(), telemetry.ExporterConfig{SwitchID: name})
		if err != nil {
			log.Fatal(err)
		}
		defer exp.Close()
		exp.AttachAgent(agent, eng) // epoch ticks push sketch snapshots

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go agent.Serve(ln)
		client, err := rpc.Dial(ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		clients[name] = client
		engines[name] = eng
		budgets[name] = scheduler.Budget{Stages: 8, ArraySize: 1 << 14, RulesPerModule: 256}
	}

	// --- Controller side: the remote deploy path plus the orchestrator
	// that plans against it.
	ctl := controller.NewRemote(clients, 1)
	ctl.AttachTelemetry(svc)
	orch, err := orchestrator.New(orchestrator.Config{Topo: topo, Budgets: budgets}, ctl)
	if err != nil {
		log.Fatal(err)
	}

	// Two intents, monitored at edge switch s1, highest priority first.
	orch.SetIntents([]orchestrator.Intent{
		{Query: query.Q4(3), Priority: 2, MinWidth: 256, MaxWidth: 1024, Edges: []string{"s1"}},
		{Query: query.Q1(3), Priority: 1, MinWidth: 256, MaxWidth: 1024, Edges: []string{"s1"}},
	})

	plan, diff, err := orch.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan (%d stages per partition):\n%s\ndiff against the empty network:\n%s",
		plan.StagesPer, orchestrator.Summary(plan), diff)

	if err := orch.Apply(plan, diff); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninstalled per switch:")
	printInstalls(names, engines)

	// An epoch tick pushes every contributing switch's sketch snapshot;
	// the merged epoch is complete only when all expected contributors
	// (here: s1 and s2, the state-owning partition holders) arrived.
	qid := orch.QID("q4_port_scan")
	epoch := engines["s1"].Layout().Epoch()
	if err := ctl.Tick(); err != nil {
		log.Fatal(err)
	}
	missing, merged := waitEpochFull(svc, qid, epoch)
	fmt.Printf("\nepoch %d provenance for q4: merged %d contributors, missing %v\n", epoch, merged, missing)

	// --- Maintenance: drain s2 and converge on the delta.
	fmt.Println("\ndraining s2 and re-planning:")
	orch.Drain("s2")
	plan2, diff2, err := orch.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", diff2)
	if err := orch.Apply(plan2, diff2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninstalled per switch after the delta:")
	printInstalls(names, engines)

	// The expected-contributor set followed the update: the next epoch is
	// already full with s1 alone.
	epoch2 := engines["s1"].Layout().Epoch()
	if err := ctl.Tick(); err != nil {
		log.Fatal(err)
	}
	missing, merged = waitEpochFull(svc, qid, epoch2)
	fmt.Printf("\nepoch %d provenance for q4: merged %d contributor, missing %v\n", epoch2, merged, missing)
}

// printInstalls lists what each engine actually holds.
func printInstalls(names []string, engines map[string]*modules.Engine) {
	for _, name := range names {
		fmt.Printf("  %-4s", name)
		for _, p := range engines[name].Programs() {
			fmt.Printf(" %s", p.Name)
		}
		fmt.Println()
	}
}

// waitEpochFull polls until the merged epoch has full provenance
// (snapshot push is asynchronous) or two seconds pass.
func waitEpochFull(svc *telemetry.Service, qid int, epoch uint32) (missing []string, merged int) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		partial, miss, m := svc.EpochStatus(qid, epoch)
		if !partial && m > 0 {
			return miss, m
		}
		if time.Now().After(deadline) {
			return miss, m
		}
		time.Sleep(2 * time.Millisecond)
	}
}
