// Package telemetry is Newton's streaming telemetry plane: the
// push-based export path that replaces poll-only report draining. A
// switch-side Exporter drains mirrored reports and epoch-boundary
// state-bank snapshots into a bounded ring, batches them, and pushes
// length-framed messages over a dedicated TCP stream with explicit
// backpressure; an analyzer-side Service accepts many agent streams
// concurrently, merges per-switch sketch banks network-wide (Count-Min
// rows counter-wise, Bloom rows bitwise), deduplicates threshold alerts
// across switches, and serves merged results to subscribers.
//
// This is the software half the paper's evaluation assumes (switches
// "mirror" reports and result snapshots to a software analyzer, §5/§6.4)
// and Sonata builds as a streaming system: data-plane tuples in,
// network-wide answers out.
package telemetry

import (
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
)

// Frame types carried on the telemetry stream. Every stream opens with
// the control channel's length-framed JSON encoding
// (rpc.WriteFrame/rpc.ReadFrame) — the bootstrap either side of any
// version speaks. A hello that proposes the binary wire codec
// (Frame.Wire) and is answered with a hello-ack upgrades the stream:
// all subsequent frames use internal/wire's binary framing. A peer
// that never acks (an old analyzer) leaves the stream on JSON — the
// negotiation/fallback matrix lives in DESIGN.md §15.
const (
	// FrameHello opens a stream: the agent announces its switch ID and,
	// optionally, the wire protocol version it can speak.
	FrameHello = "hello"
	// FrameHelloAck is the service's answer to a hello that proposed a
	// wire upgrade; it is only sent when the hello carried Wire >= 1 (an
	// old JSON exporter never reads, so it must never be written to).
	FrameHelloAck = "hello_ack"
	// FrameReports carries a batch of mirrored reports.
	FrameReports = "reports"
	// FrameSnapshot carries the epoch-boundary state-bank snapshots of
	// every installed query on the sending switch.
	FrameSnapshot = "snapshot"
	// FrameBye closes a stream cleanly, carrying the exporter's final
	// counters so the analyzer can account for loss explicitly.
	FrameBye = "bye"
)

// Codec selects the telemetry stream encoding an exporter asks for.
type Codec int

const (
	// CodecAuto proposes the binary wire protocol and falls back to
	// JSON when the peer does not ack in time — the default.
	CodecAuto Codec = iota
	// CodecJSON never proposes an upgrade: pure legacy framing.
	CodecJSON
	// CodecBinary requires the binary protocol; construction fails if
	// the peer does not ack.
	CodecBinary
)

// String names the codec preference.
func (c Codec) String() string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecBinary:
		return "binary"
	}
	return "auto"
}

// Frame is one telemetry-stream message.
type Frame struct {
	Type     string `json:"type"`
	SwitchID string `json:"switch_id,omitempty"`

	// Wire, on hello and hello-ack frames, negotiates the binary wire
	// protocol: the agent proposes the highest internal/wire version it
	// speaks, the service acks with the version granted. Old peers
	// unmarshal JSON with unknown fields ignored, so the field is
	// invisible to them and the stream stays JSON.
	Wire int `json:"wire,omitempty"`

	// Epoch tags snapshot frames with the register epoch that just
	// ended (the window the snapshot captures).
	Epoch uint32 `json:"epoch,omitempty"`

	Reports   []dataplane.Report     `json:"reports,omitempty"`
	Snapshots []modules.BankSnapshot `json:"snapshots,omitempty"`

	// Stats rides on bye frames: the exporter's final counters, shared
	// with the control channel's export_stats response type.
	Stats *rpc.ExportStats `json:"stats,omitempty"`
}
