package modules

import (
	"testing"

	"github.com/newton-net/newton/internal/classify"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/obs"
)

func TestFootprint(t *testing.T) {
	f := buildCountProgram(1, 3, 1024).Footprint()
	want := Footprint{
		Stages:      6, // ops span stages 1..5
		HashUnits:   1,
		SALUs:       1,
		Registers:   1024,
		InitRules:   1,
		ResultRules: 2,
		Rules:       5,

		ClassifierPreds: 2, // proto=TCP and tcpflags=SYN
	}
	if f != want {
		t.Fatalf("Footprint = %+v, want %+v", f, want)
	}
}

// TestAttachObsEngineCounters checks the attached metrics against
// ground truth: every processed packet shows up in the packet counter,
// per-module execution counts match the installed chain shape, and the
// per-query resource gauges appear on install and vanish on remove.
func TestAttachObsEngineCounters(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	reg := obs.NewRegistry()
	AttachObs(eng, reg, "s1")

	if err := eng.Install(buildCountProgram(1, 1<<30, 1024)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng

	const n = 100
	for i := 0; i < n; i++ {
		sw.Process(synTo(42))
	}

	snap := reg.Snapshot()
	swl := obs.L("switch", "s1")
	if s := snap.Find("newton_engine_packets_total", swl); s == nil || s.Value != n {
		t.Fatalf("packets_total = %v, want %d", s, n)
	}
	// The count chain executes K, H, S once and R twice per packet.
	wantExecs := map[string]float64{"K": n, "H": n, "S": n, "R": 2 * n}
	for mod, want := range wantExecs {
		s := snap.Find("newton_engine_module_execs_total", swl, obs.L("module", mod))
		if s == nil || s.Value != want {
			t.Fatalf("module_execs_total{module=%s} = %v, want %v", mod, s, want)
		}
	}
	// Sampled exec latency: 100 packets at a 1/64 sampling rate must
	// have observed at least one.
	if f := snap.Get("newton_engine_exec_ns"); f == nil || len(f.Series) == 0 || f.Series[0].Count == 0 {
		t.Fatalf("exec_ns histogram unobserved: %+v", f)
	}

	// Per-query resource gauges, from the same footprint as TestFootprint.
	ql := []obs.Label{swl, obs.L("qid", "1"), obs.L("query", "count_syn")}
	for name, want := range map[string]float64{
		"newton_query_stages":    6,
		"newton_query_registers": 1024,
		"newton_query_rules":     5,
	} {
		if s := snap.Find(name, ql...); s == nil || s.Value != want {
			t.Fatalf("%s = %v, want %v", name, s, want)
		}
	}

	if err := eng.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	snap = reg.Snapshot()
	if s := snap.Find("newton_query_stages", ql...); s != nil {
		t.Fatalf("query gauge survived remove: %+v", s)
	}
}

// TestAttachObsZeroAlloc is the acceptance guard for the instrumented
// fast path: with the full observability surface attached — packet and
// module-exec counters, per-worker sampled latency histograms, per-query
// gauges — steady-state packet processing must not allocate on the
// sequential path or on any sharded worker lane.
func TestAttachObsZeroAlloc(t *testing.T) {
	const workers = 4
	l := compactLayout(t)
	eng := NewEngine(l)
	eng.SetWorkers(workers)
	reg := obs.NewRegistry()
	AttachObs(eng, reg, "s1")
	if err := eng.Install(buildCountProgram(1, 1<<30, 1024)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.SetLanes(workers)
	sw.Monitor = eng

	pkt := synTo(42)
	sw.Process(pkt) // warm: dispatch entry + hash memo
	// 200 runs crosses the 1/64 sampling boundary several times, so the
	// timed path is exercised too.
	if avg := testing.AllocsPerRun(200, func() {
		sw.Process(pkt)
	}); avg != 0 {
		t.Fatalf("instrumented steady-state allocs per packet = %v, want 0", avg)
	}

	// Every worker lane, each with its own dispatch cache, memo, counters,
	// and {switch, worker}-labeled histogram, must also run allocation-free.
	for w := 0; w < workers; w++ {
		var sink []dataplane.Report
		ctx := dataplane.NewBatchContext(&sink, w)
		sw.ProcessCtx(pkt, ctx) // warm this lane's cache
		if avg := testing.AllocsPerRun(200, func() {
			sw.ProcessCtx(pkt, ctx)
		}); avg != 0 {
			t.Fatalf("worker %d steady-state allocs per packet = %v, want 0", w, avg)
		}
	}
}

// TestAttachObsClassifierSeries checks the compiled-classifier
// observability surface: the ternary-scan counter moves while
// newton_init serves lookups by linear scan (one rule is below the
// compile threshold), the per-table compiled gauge reads 0, and after
// forcing compilation the gauge flips to 1 and the counter goes flat.
func TestAttachObsClassifierSeries(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	reg := obs.NewRegistry()
	AttachObs(eng, reg, "s1")
	if err := eng.Install(buildCountProgram(1, 1<<30, 1024)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng
	swl := obs.L("switch", "s1")

	for i := 0; i < 4; i++ {
		sw.Process(synTo(uint32(i))) // distinct flows: each misses dispatch
	}
	snap := reg.Snapshot()
	if s := snap.Find("newton_engine_ternary_scan_total", swl); s == nil || s.Value == 0 {
		t.Fatalf("ternary_scan_total = %v, want > 0 under scan fallback", s)
	}
	g := snap.Find("newton_table_classifier_compiled", swl, obs.L("table", "newton_init"))
	if g == nil || g.Value != 0 {
		t.Fatalf("classifier_compiled{newton_init} = %v, want 0 below compile threshold", g)
	}
	if s := snap.Find("newton_table_classifier_compiled", swl, obs.L("table", "newton_fin")); s == nil {
		t.Fatal("classifier_compiled{newton_fin} series missing")
	}

	// Force compilation at any rule count; the config change republishes
	// newton_init, so the next new flow takes the classified path.
	l.Init.SetClassifierConfig(classify.Config{MinRules: 1})
	before := snap.Find("newton_engine_ternary_scan_total", swl).Value
	for i := 10; i < 20; i++ {
		sw.Process(synTo(uint32(i)))
	}
	snap = reg.Snapshot()
	if s := snap.Find("newton_engine_ternary_scan_total", swl); s.Value != before {
		t.Fatalf("ternary_scan_total moved %v -> %v with a compiled classifier", before, s.Value)
	}
	g = snap.Find("newton_table_classifier_compiled", swl, obs.L("table", "newton_init"))
	if g == nil || g.Value != 1 {
		t.Fatalf("classifier_compiled{newton_init} = %v, want 1 after compile", g)
	}
}
