package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// ThroughputResult is the headline fast-path measurement: one
// fully-loaded switch (all nine catalog queries) on the standard
// evaluation trace. It mirrors BenchmarkPacketThroughput so the same
// number is available from cmd/newton-bench, including -json.
type ThroughputResult struct {
	Packets      int     // packets timed (after the warm pass)
	NsPerPkt     float64 // wall time per packet through the full pipeline
	PktsPerSec   float64
	AllocsPerPkt float64 // heap allocations per packet on the steady-state path
	Drops        uint64  // packets the simulated switch refused
}

func (r *ThroughputResult) String() string {
	t := &table{header: []string{"packets", "ns/pkt", "pkts/sec", "allocs/pkt", "drops"}}
	t.add(fmt.Sprint(r.Packets), fmt.Sprintf("%.1f", r.NsPerPkt),
		fmt.Sprintf("%.0f", r.PktsPerSec), fmt.Sprintf("%.3f", r.AllocsPerPkt),
		fmt.Sprint(r.Drops))
	return t.String()
}

// Metrics exposes the result for machine-readable output (-json).
func (r *ThroughputResult) Metrics() map[string]float64 {
	return map[string]float64{
		"packets":    float64(r.Packets),
		"ns_per_pkt": r.NsPerPkt,
		"pkts_sec":   r.PktsPerSec,
		"allocs_pkt": r.AllocsPerPkt,
		"drops":      float64(r.Drops),
	}
}

// Throughput measures steady-state per-packet cost on one switch with
// every catalog query installed. A full warm pass settles register
// epochs and caches before timing; allocations are measured with a
// runtime.MemStats delta over the timed loop.
func Throughput(flows int, dur time.Duration) *ThroughputResult {
	if flows == 0 {
		flows = 2000
	}
	if dur == 0 {
		dur = 400 * time.Millisecond
	}
	topo, _, _ := topology.Linear(1)
	net, err := netsim.New(topo, netsim.Config{Stages: 16, ArraySize: 1 << 16})
	if err != nil {
		panic(err)
	}
	sw := net.Node(topo.Switches()[0])
	for i, q := range query.All() {
		o := compiler.AllOpts()
		o.QID = i + 1
		o.Width = 1 << 12
		p, err := compiler.Compile(q, o)
		if err != nil {
			panic(err)
		}
		if err := sw.Eng.Install(p); err != nil {
			panic(err)
		}
	}
	tr := trace.Generate(trace.Config{Seed: 99, Flows: flows, Duration: dur},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 600},
		trace.PortScan{Scanner: 0x0B000001, Victim: 0x0A0000AC, Ports: 200})
	pkts := tr.Packets
	path := topo.Switches()

	// Two warm passes: the first settles register epochs and dispatch
	// caches, the second grows the report buffers to their steady size.
	// Draining with the append form keeps every backing array alive, so
	// the timed pass runs with literally zero heap allocations.
	var reports []dataplane.Report
	for p := 0; p < 2; p++ {
		for _, pkt := range pkts {
			net.DeliverPath(pkt, path)
		}
		reports = net.DrainReportsAppend(reports[:0])
	}
	_, warmDropped := net.Stats()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for _, pkt := range pkts {
		net.DeliverPath(pkt, path)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	_, dropped := net.Stats()
	net.DrainReportsAppend(reports[:0])
	n := len(pkts)
	return &ThroughputResult{
		Packets:      n,
		NsPerPkt:     float64(elapsed.Nanoseconds()) / float64(n),
		PktsPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerPkt: float64(after.Mallocs-before.Mallocs) / float64(n),
		Drops:        dropped - warmDropped,
	}
}
