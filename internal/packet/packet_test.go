package packet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/newton-net/newton/internal/fields"
)

func tcpPacket() *Packet {
	return &Packet{
		TS:     123456789,
		InPort: 3,
		Eth:    Ethernet{Dst: 0x0000_5E00_5301, Src: 0x0000_5E00_5302},
		IP: IPv4{
			TTL: 64, Proto: ProtoTCP,
			Src: IPv4Addr("192.168.1.10"), Dst: IPv4Addr("10.0.0.1"),
		},
		TCP:        &TCP{SrcPort: 50123, DstPort: 443, Seq: 1000, Ack: 2000, Flags: FlagSYN, Window: 65535},
		PayloadLen: 100,
	}
}

func TestSerializeDecodeTCP(t *testing.T) {
	p := tcpPacket()
	buf := p.Serialize()
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.IP.Src != p.IP.Src || got.IP.Dst != p.IP.Dst || got.IP.Proto != ProtoTCP {
		t.Errorf("IP mismatch: %+v", got.IP)
	}
	if got.TCP == nil || got.TCP.SrcPort != 50123 || got.TCP.DstPort != 443 || got.TCP.Flags != FlagSYN {
		t.Errorf("TCP mismatch: %+v", got.TCP)
	}
	if got.PayloadLen != 100 {
		t.Errorf("PayloadLen = %d, want 100", got.PayloadLen)
	}
	if got.Len() != p.Len() {
		t.Errorf("Len mismatch: %d vs %d", got.Len(), p.Len())
	}
}

func TestSerializeDecodeUDP(t *testing.T) {
	p := &Packet{
		IP:         IPv4{TTL: 64, Proto: ProtoUDP, Src: 1, Dst: 2},
		UDP:        &UDP{SrcPort: 53, DstPort: 33333},
		PayloadLen: 60,
	}
	got, err := Decode(p.Serialize())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.UDP == nil || got.UDP.SrcPort != 53 {
		t.Fatalf("UDP mismatch: %+v", got.UDP)
	}
	if got.UDP.Length != 68 {
		t.Errorf("UDP length = %d, want 68", got.UDP.Length)
	}
}

func TestSerializeDecodeWithSP(t *testing.T) {
	p := tcpPacket()
	p.SP = &SPHeader{QID: 0x7FF, Part: 5, State0: 0xDEADBEEF, State1: 42, Global: 999}
	buf := p.Serialize()
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.SP == nil {
		t.Fatal("SP header lost")
	}
	if *got.SP != *p.SP {
		t.Errorf("SP mismatch: %+v vs %+v", got.SP, p.SP)
	}
	if got.TCP == nil || got.TCP.DstPort != 443 {
		t.Error("inner headers corrupted by SP shim")
	}
	if len(buf) != p.Len() {
		t.Errorf("wire len %d != Len() %d", len(buf), p.Len())
	}
}

func TestSPOverheadIs12Bytes(t *testing.T) {
	p := tcpPacket()
	without := len(p.Serialize())
	p.SP = &SPHeader{}
	with := len(p.Serialize())
	if with-without != SPHeaderLen {
		t.Errorf("SP overhead = %d bytes, want %d", with-without, SPHeaderLen)
	}
	// Paper claim: <1% bandwidth overhead at 1500-byte packets.
	if frac := float64(SPHeaderLen) / 1500; frac >= 0.01 {
		t.Errorf("SP overhead fraction %f not < 1%%", frac)
	}
}

func TestSPRoundTripQuick(t *testing.T) {
	f := func(qid uint16, part uint8, s0, s1 uint32, g uint16) bool {
		h := &SPHeader{QID: qid & 0xFFF, Part: part & 0x0F, State0: s0, State1: s1, Global: g}
		got, err := UnmarshalSP(MarshalSP(h))
		return err == nil && *got == *h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalSPShort(t *testing.T) {
	if _, err := UnmarshalSP(make([]byte, 5)); err == nil {
		t.Error("short SP should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"short ethernet": make([]byte, 10),
		"bad ethertype":  append(make([]byte, 12), 0x86, 0xDD), // IPv6
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Corrupt checksum.
	buf := tcpPacket().Serialize()
	buf[14+10] ^= 0xFF
	if _, err := Decode(buf); err == nil {
		t.Error("corrupted checksum not detected")
	}
}

func TestFlowKey(t *testing.T) {
	p := tcpPacket()
	k := p.Flow()
	if k.Proto != ProtoTCP || k.SPort != 50123 || k.DPort != 443 {
		t.Errorf("Flow() = %+v", k)
	}
	r := k.Reverse()
	if r.Src != k.Dst || r.SPort != k.DPort || r.Reverse() != k {
		t.Errorf("Reverse broken: %+v", r)
	}
	want := "192.168.1.10:50123 -> 10.0.0.1:443/tcp"
	if k.String() != want {
		t.Errorf("String() = %q, want %q", k.String(), want)
	}
}

func TestFieldsExtraction(t *testing.T) {
	p := tcpPacket()
	v := p.Fields()
	if v.Get(fields.SrcIP) != uint64(p.IP.Src) {
		t.Error("sip not extracted")
	}
	if v.Get(fields.DstPort) != 443 || v.Get(fields.TCPFlags) != FlagSYN {
		t.Error("tcp fields not extracted")
	}
	if v.Get(fields.PktLen) != uint64(p.Len()) {
		t.Errorf("len = %d, want %d", v.Get(fields.PktLen), p.Len())
	}
	udp := &Packet{IP: IPv4{Proto: ProtoUDP, TTL: 1}, UDP: &UDP{SrcPort: 53, DstPort: 999}}
	uv := udp.Fields()
	if uv.Get(fields.SrcPort) != 53 || uv.Get(fields.TCPFlags) != 0 {
		t.Error("udp fields wrong")
	}
}

func TestChecksumRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		b := make([]byte, 20)
		rng.Read(b)
		b[10], b[11] = 0, 0
		c := checksum(b)
		b[10], b[11] = byte(c>>8), byte(c)
		if checksum(b) != 0 {
			t.Fatalf("checksum does not verify: %x", b)
		}
	}
}

func TestIPv4AddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IPv4Addr on garbage should panic")
		}
	}()
	IPv4Addr("not-an-ip")
}

func TestIPv4Addr(t *testing.T) {
	if IPv4Addr("10.0.0.1") != 0x0A000001 {
		t.Errorf("IPv4Addr = %#x", IPv4Addr("10.0.0.1"))
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	// The parser must reject, never crash, on arbitrary wire bytes.
	rng := rand.New(rand.NewSource(99))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Decode panicked: %v", r)
		}
	}()
	for i := 0; i < 5000; i++ {
		n := rng.Intn(120)
		buf := make([]byte, n)
		rng.Read(buf)
		Decode(buf)
	}
	// And on truncations of a valid packet at every length.
	valid := tcpPacket().Serialize()
	for n := 0; n <= len(valid); n++ {
		Decode(valid[:n])
	}
	// And on single-byte corruptions of a valid packet.
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xFF
		Decode(mut)
	}
}

func TestDecodeBitFlipsRoundTrip(t *testing.T) {
	// Any packet that decodes after a bit flip must re-serialize without
	// panicking (internal consistency of the accepted set).
	valid := tcpPacket().Serialize()
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x01
		p, err := Decode(mut)
		if err != nil {
			continue
		}
		if got := p.Serialize(); len(got) == 0 {
			t.Fatalf("flip at %d: decoded packet serialized to nothing", i)
		}
	}
}
