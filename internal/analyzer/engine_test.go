package analyzer

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/trace"
)

func TestQ1DetectsSYNFlood(t *testing.T) {
	victim := uint32(0x0A0000AA)
	tr := trace.Generate(trace.Config{Seed: 1, Flows: 300, Duration: 200 * time.Millisecond},
		trace.SYNFlood{Victim: victim, Packets: 500})
	e := NewEngine(query.Q1(40))
	e.Run(tr.Packets)
	if !e.FlaggedKeys()[uint64(victim)] {
		t.Fatal("Q1 missed the SYN flood victim")
	}
}

func TestQ1WindowReset(t *testing.T) {
	// 30 SYNs in each of two windows: never crosses a threshold of 40.
	e := NewEngine(query.Q1(40))
	for w := uint64(0); w < 2; w++ {
		for i := 0; i < 30; i++ {
			e.Process(synPkt(w*uint64(100*time.Millisecond)+uint64(i), 7))
		}
	}
	e.Flush()
	if len(e.Alerts()) != 0 {
		t.Fatalf("windowed counts leaked across windows: %v", e.Alerts())
	}
	// 60 SYNs within one window: exactly one alert at window close,
	// carrying the window-final count.
	e2 := NewEngine(query.Q1(40))
	for i := 0; i < 60; i++ {
		e2.Process(synPkt(uint64(i), 7))
	}
	e2.Flush()
	if len(e2.Alerts()) != 1 {
		t.Fatalf("got %d alerts, want 1 (per window)", len(e2.Alerts()))
	}
	a := e2.Alerts()[0]
	if a.Key != 7 || a.Value != 60 {
		t.Errorf("alert = %+v, want key 7 value 60", a)
	}
	// Flush is idempotent.
	e2.Flush()
	if len(e2.Alerts()) != 1 {
		t.Error("double Flush duplicated alerts")
	}
}

func synPkt(ts uint64, dst uint32) *packet.Packet {
	return &packet.Packet{
		TS: ts,
		IP: packet.IPv4{Proto: packet.ProtoTCP, TTL: 64, Src: 1, Dst: dst},
		TCP: &packet.TCP{SrcPort: 1000, DstPort: 80,
			Flags: packet.FlagSYN},
	}
}

func TestQ3SuperSpreader(t *testing.T) {
	spreader := uint32(0xC0A80101)
	tr := trace.Generate(trace.Config{Seed: 3, Flows: 100, Duration: 90 * time.Millisecond},
		trace.SuperSpreader{Source: spreader, Fanout: 100})
	e := NewEngine(query.Q3(40))
	e.Run(tr.Packets)
	if !e.FlaggedKeys()[uint64(spreader)] {
		t.Fatal("Q3 missed the super spreader")
	}
}

func TestQ3DistinctSuppressesRepeats(t *testing.T) {
	// 100 packets to the SAME destination: distinct(sip,dip) passes one.
	e := NewEngine(query.Q3(40))
	for i := 0; i < 100; i++ {
		e.Process(synPkt(uint64(i), 9))
	}
	e.Flush()
	if len(e.Alerts()) != 0 {
		t.Fatal("repeated destination counted as distinct fan-out")
	}
}

func TestQ4PortScan(t *testing.T) {
	tr := trace.Generate(trace.Config{Seed: 5, Flows: 50, Duration: 90 * time.Millisecond},
		trace.PortScan{Scanner: 11, Victim: 22, Ports: 80})
	e := NewEngine(query.Q4(40))
	e.Run(tr.Packets)
	if !e.FlaggedKeys()[22] {
		t.Fatal("Q4 missed the scanned host")
	}
}

func TestQ5UDPDDoS(t *testing.T) {
	tr := trace.Generate(trace.Config{Seed: 6, Flows: 50, Duration: 90 * time.Millisecond},
		trace.UDPFlood{Victim: 33, Sources: 90})
	e := NewEngine(query.Q5(40))
	e.Run(tr.Packets)
	if !e.FlaggedKeys()[33] {
		t.Fatal("Q5 missed the flood victim")
	}
}

func TestQ2SSHBrute(t *testing.T) {
	tr := trace.Generate(trace.Config{Seed: 7, Flows: 50, Duration: 90 * time.Millisecond},
		trace.SSHBrute{Victim: 44, Attempts: 60})
	e := NewEngine(query.Q2(20))
	e.Run(tr.Packets)
	if !e.FlaggedKeys()[44] {
		t.Fatal("Q2 missed the brute-forced host")
	}
}

func TestQ6SYNFloodMerge(t *testing.T) {
	victim := uint32(0x0A0000BB)
	tr := trace.Generate(trace.Config{Seed: 8, Flows: 200, Duration: 90 * time.Millisecond},
		trace.SYNFlood{Victim: victim, Packets: 300})
	e := NewEngine(query.Q6(30))
	e.Run(tr.Packets)
	if !e.FlaggedKeys()[uint64(victim)] {
		t.Fatal("Q6 missed the SYN flood victim")
	}
}

func TestQ6IgnoresHealthyTraffic(t *testing.T) {
	// Complete handshakes: syn + synack - 2*ack stays non-positive.
	e := NewEngine(query.Q6(30))
	ts := uint64(0)
	server := uint32(99)
	for c := 0; c < 200; c++ {
		client := uint32(1000 + c)
		sport := uint16(10000 + c)
		e.Process(&packet.Packet{TS: ts, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: client, Dst: server},
			TCP: &packet.TCP{SrcPort: sport, DstPort: 80, Flags: packet.FlagSYN}})
		e.Process(&packet.Packet{TS: ts + 1, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: server, Dst: client},
			TCP: &packet.TCP{SrcPort: 80, DstPort: sport, Flags: packet.FlagSYN | packet.FlagACK}})
		e.Process(&packet.Packet{TS: ts + 2, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: client, Dst: server},
			TCP: &packet.TCP{SrcPort: sport, DstPort: 80, Flags: packet.FlagACK}})
		ts += 3
	}
	e.Flush()
	if e.FlaggedKeys()[uint64(server)] {
		t.Fatal("Q6 flagged a healthy server")
	}
}

func TestQ7CompletedConnections(t *testing.T) {
	e := NewEngine(query.Q7(20))
	server := uint32(77)
	ts := uint64(0)
	for c := 0; c < 30; c++ {
		sport := uint16(20000 + c)
		e.Process(&packet.Packet{TS: ts, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: uint32(c), Dst: server},
			TCP: &packet.TCP{SrcPort: sport, DstPort: 80, Flags: packet.FlagSYN}})
		e.Process(&packet.Packet{TS: ts + 1, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: uint32(c), Dst: server},
			TCP: &packet.TCP{SrcPort: sport, DstPort: 80, Flags: packet.FlagFIN | packet.FlagACK}})
		ts += 2
	}
	e.Flush()
	if !e.FlaggedKeys()[uint64(server)] {
		t.Fatal("Q7 missed completed connections")
	}
	// Opens without closes must not alert: min(opens, 0) == 0.
	e2 := NewEngine(query.Q7(20))
	for c := 0; c < 30; c++ {
		e2.Process(synPkt(uint64(c), server))
	}
	e2.Flush()
	if len(e2.Alerts()) != 0 {
		t.Fatal("Q7 alerted on half-open connections")
	}
}

func TestQ8Slowloris(t *testing.T) {
	tr := trace.Generate(trace.Config{Seed: 9, Flows: 0, Duration: 90 * time.Millisecond},
		trace.Slowloris{Victim: 55, Conns: 100})
	e := NewEngine(query.Q8(1000))
	e.Run(tr.Packets)
	if !e.FlaggedKeys()[55] {
		t.Fatal("Q8 missed the Slowloris victim")
	}
}

func TestQ8IgnoresBulkTransfer(t *testing.T) {
	// One connection, many full-size packets: bytes dominate, no alert.
	e := NewEngine(query.Q8(1000))
	for i := 0; i < 200; i++ {
		e.Process(&packet.Packet{TS: uint64(i), IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 1, Dst: 66},
			TCP:        &packet.TCP{SrcPort: 5000, DstPort: 80, Flags: packet.FlagACK | packet.FlagPSH},
			PayloadLen: 1400})
	}
	e.Flush()
	if e.FlaggedKeys()[66] {
		t.Fatal("Q8 flagged a bulk transfer")
	}
}

func TestQ9DNSNoTCP(t *testing.T) {
	tr := trace.Generate(trace.Config{Seed: 10, Flows: 0, Duration: 90 * time.Millisecond},
		trace.DNSNoTCP{Hosts: 3, Queries: 10})
	e := NewEngine(query.Q9(5))
	e.Run(tr.Packets)
	flagged := e.FlaggedKeys()
	for host := range tr.Truth.DNSOnlyHosts {
		if !flagged[uint64(host)] {
			t.Fatalf("Q9 missed DNS-only host %d", host)
		}
	}
}

func TestQ9VetoedByTCP(t *testing.T) {
	e := NewEngine(query.Q9(5))
	host := uint32(0xD3000099)
	for i := 0; i < 20; i++ {
		e.Process(&packet.Packet{TS: uint64(i), IP: packet.IPv4{Proto: packet.ProtoUDP, Src: 0x08080808, Dst: host},
			UDP: &packet.UDP{SrcPort: 53, DstPort: 4000}})
	}
	// One outgoing TCP SYN vetoes the host.
	e.Process(&packet.Packet{TS: 21, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: host, Dst: 1},
		TCP: &packet.TCP{SrcPort: 1234, DstPort: 443, Flags: packet.FlagSYN}})
	for i := 0; i < 20; i++ {
		e.Process(&packet.Packet{TS: uint64(30 + i), IP: packet.IPv4{Proto: packet.ProtoUDP, Src: 0x08080808, Dst: host},
			UDP: &packet.UDP{SrcPort: 53, DstPort: 4000}})
	}
	e.Flush()
	if e.FlaggedKeys()[uint64(host)] {
		t.Fatal("Q9 flagged a host that opened TCP")
	}
}

func TestFinalCounts(t *testing.T) {
	e := NewEngine(query.Q1(40))
	for i := 0; i < 10; i++ {
		e.Process(synPkt(uint64(i), 5))
	}
	e.Flush()
	fc := e.FinalCounts()
	if fc[0][5] != 10 {
		t.Errorf("FinalCounts[0][5] = %d, want 10", fc[0][5])
	}
}

func TestEngineRejectsInvalidQuery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid query should panic")
		}
	}()
	NewEngine(&query.Query{})
}

func TestBackgroundOnlyNoAlerts(t *testing.T) {
	// Default thresholds should be quiet on moderate background traffic.
	tr := trace.Generate(trace.Config{Seed: 99, Flows: 300, Duration: 200 * time.Millisecond})
	for i, q := range query.All() {
		if i == 6 { // Q7 counts completed connections; background completes connections by design
			continue
		}
		e := NewEngine(q)
		e.Run(tr.Packets)
		if n := len(e.Alerts()); n > 3 {
			t.Errorf("%s fired %d alerts on pure background", q.Name, n)
		}
	}
}

func TestCollectorDedup(t *testing.T) {
	mask := fields.Keep(fields.DstIP)
	c := NewCollector(uint64(100*time.Millisecond), mask)
	var keys fields.Vector
	keys.Set(fields.DstIP, 42)
	r := dataplane.Report{TS: 10, Keys: keys, KeyMask: mask}
	c.Add(r)
	c.Add(r) // duplicate in same window
	r2 := r
	r2.TS = uint64(150 * time.Millisecond) // next window
	c.AddAll([]dataplane.Report{r2})
	if c.Raw != 3 {
		t.Errorf("Raw = %d, want 3", c.Raw)
	}
	if got := len(c.FlaggedKeys()); got != 1 {
		t.Errorf("flagged keys = %d, want 1", got)
	}
	if got := len(c.Windows()); got != 2 {
		t.Errorf("windows = %d, want 2", got)
	}
	if !c.FlaggedIn(0)[42] {
		t.Error("window 0 missing key")
	}
}

func TestAccuracyMetrics(t *testing.T) {
	truth := map[uint64]bool{1: true, 2: true, 3: true, 4: true}
	detected := map[uint64]bool{1: true, 2: true, 9: true}
	a := Compare(detected, truth)
	if a.TruePositives != 2 || a.FalseNegatives != 2 || a.FalsePositives != 1 {
		t.Fatalf("Compare = %+v", a)
	}
	if a.Recall() != 0.5 {
		t.Errorf("Recall = %f", a.Recall())
	}
	if got := a.FPR(); got != 1.0/3 {
		t.Errorf("FPR = %f", got)
	}
	if a.F1() <= 0 || a.F1() > 1 {
		t.Errorf("F1 = %f", a.F1())
	}
}

func TestAccuracyDegenerate(t *testing.T) {
	var a Accuracy
	if a.Recall() != 1 || a.FPR() != 0 {
		t.Error("empty comparison should be perfect")
	}
	if (Accuracy{}).F1() == 0 {
		t.Error("perfect F1 should be nonzero")
	}
}

func BenchmarkEngineQ1(b *testing.B) {
	tr := trace.Generate(trace.Config{Seed: 1, Flows: 1000, Duration: time.Second},
		trace.SYNFlood{Victim: 1, Packets: 1000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(query.Q1(40))
		e.Run(tr.Packets)
	}
}
