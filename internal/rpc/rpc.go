// Package rpc is the control channel between the Newton controller and
// switch agents — the role P4Runtime plays on real Tofino deployments.
// It carries compiled programs, rule operations, window-epoch ticks, and
// report drains over TCP as length-framed JSON messages, using only the
// standard library.
//
// The same length-framed encoding (WriteFrame/ReadFrame) carries the
// streaming telemetry plane (internal/telemetry): agents push report
// batches and epoch snapshots to the analyzer over a dedicated stream
// using these frames, and the control channel exposes the exporter's
// counters via the ExportStats request.
//
// A switch-side Agent wraps a module engine; a controller-side Client
// dials it:
//
//	agent := rpc.NewAgent(sw, eng)
//	go agent.Serve(listener)
//	...
//	c, _ := rpc.Dial(addr)
//	c.Install(program)
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/obs"
)

// MaxFrame bounds one message (a compiled program is a few KB; a report
// drain or telemetry batch a few hundred KB at worst).
const MaxFrame = 8 << 20

// ErrFrameTooLarge is returned when a frame exceeds MaxFrame in either
// direction: an outbound message that would not fit, or an inbound
// header announcing an oversized body (a poisoned or misframed peer).
var ErrFrameTooLarge = errors.New("rpc: frame exceeds size limit")

// ErrMalformedResponse is returned when the agent answers OK but the
// response is missing the payload the request implies (e.g. a stats
// reply without stats).
var ErrMalformedResponse = errors.New("rpc: malformed response: missing payload")

// ErrClientClosed is returned by every call on a Client after Close —
// including a call whose round trip was in flight when Close severed
// the connection. It replaces the raw "use of closed network
// connection" string the net package surfaces.
var ErrClientClosed = errors.New("rpc: client closed")

// Agent error codes: machine-checkable classifications of application
// errors the agent returns, carried alongside the message so retrying
// controllers can treat level-triggered outcomes ("the query is
// already there", "it is already gone") as convergence, not failure.
const (
	CodeAlreadyInstalled = "already_installed"
	CodeNotInstalled     = "not_installed"
)

// AgentError is an application-level error from the agent: the request
// reached the agent and was rejected. It is never retried — the
// connection stays healthy.
type AgentError struct {
	Code string // one of the Code* constants, or "" for uncategorized
	Msg  string
}

func (e *AgentError) Error() string { return "rpc: agent: " + e.Msg }

// IsAgentCode reports whether err is an AgentError with the given code.
func IsAgentCode(err error, code string) bool {
	var ae *AgentError
	return errors.As(err, &ae) && ae.Code == code
}

// Message types.
const (
	typeInstall     = "install"
	typeRemove      = "remove"
	typeStats       = "stats"
	typeDrain       = "drain_reports"
	typeEpoch       = "next_epoch"
	typeExportStats = "export_stats"
)

// Request is one controller → agent message.
type Request struct {
	Type    string           `json:"type"`
	QID     int              `json:"qid,omitempty"`
	Program *modules.Program `json:"program,omitempty"`

	// ID identifies the logical call. A client reuses the same ID across
	// retry attempts of one call, so the agent's replay cache can answer
	// a retransmit with the original response instead of executing the
	// operation twice (at-most-once execution under retries). Zero means
	// "no replay protection" (hand-rolled or legacy peers).
	ID uint64 `json:"id,omitempty"`

	// DrainAck (drain_reports only) acknowledges the highest drain
	// Cursor the client has received. The agent serves a fresh batch
	// when the ack matches its cursor and re-delivers the previous batch
	// when the ack trails by one — so a drain retried after a lost
	// response never double-delivers and never loses reports.
	DrainAck uint64 `json:"drain_ack,omitempty"`
}

// Stats is the agent's rule/program accounting.
type Stats struct {
	RuleEntries int `json:"rule_entries"`
	Installed   int `json:"installed"`
}

// ExportStats is the telemetry exporter's counter snapshot — a frame
// type shared between the control channel (the export_stats request)
// and the telemetry stream's final accounting frame.
type ExportStats struct {
	Enqueued  uint64 `json:"enqueued"`  // reports offered to the export ring
	Exported  uint64 `json:"exported"`  // reports written to the stream
	Dropped   uint64 `json:"dropped"`   // reports lost to drop-oldest overflow
	Overflows uint64 `json:"overflows"` // ring-full bursts (one per burst of blocks or evictions)
	Batches   uint64 `json:"batches"`   // report frames written
	Snapshots uint64 `json:"snapshots"` // state-bank snapshot frames written

	Reconnects uint64 `json:"reconnects,omitempty"` // analyzer streams re-established

	// Wire codec counters (internal/wire), zero on JSON-only streams.
	Codec            string `json:"codec,omitempty"`             // negotiated telemetry codec ("json" or "binary")
	WireBytes        uint64 `json:"wire_bytes,omitempty"`        // bytes written to the telemetry stream, headers included
	PayloadBytes     uint64 `json:"payload_bytes,omitempty"`     // encoded payload bytes before compression
	CompressedFrames uint64 `json:"compressed_frames,omitempty"` // frames whose payload the flate gate shrank
	DeltaBanks       uint64 `json:"delta_banks,omitempty"`       // snapshot banks sent as sparse deltas
	KeyframeBanks    uint64 `json:"keyframe_banks,omitempty"`    // snapshot banks sent in full
	EncodeNs         uint64 `json:"encode_ns,omitempty"`         // nanoseconds spent encoding wire payloads
}

// Response is one agent → controller message.
type Response struct {
	OK      bool               `json:"ok"`
	Error   string             `json:"error,omitempty"`
	Code    string             `json:"code,omitempty"` // machine-checkable error class
	ID      uint64             `json:"id,omitempty"`   // echo of the request ID
	Cursor  uint64             `json:"cursor,omitempty"`
	Stats   *Stats             `json:"stats,omitempty"`
	Export  *ExportStats       `json:"export,omitempty"`
	Reports []dataplane.Report `json:"reports,omitempty"`
}

// WriteFrame sends one length-prefixed JSON message.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: encoding: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: outbound frame of %d bytes", ErrFrameTooLarge, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame receives one length-prefixed JSON message into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("%w: inbound frame of %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("rpc: decoding: %w", err)
	}
	return nil
}

// Agent is the switch-side control endpoint.
type Agent struct {
	mu  sync.Mutex
	sw  *dataplane.Switch
	eng *modules.Engine

	// OnEpoch, when set, runs on every next_epoch request before the
	// register windows roll — the telemetry exporter's chance to snapshot
	// the ending epoch's state banks (their values read as zero once the
	// epoch advances). It runs under the agent's dispatch lock, so it is
	// ordered with installs and drains.
	OnEpoch func()

	// ExportStatsFn, when set, serves the export_stats request — wired to
	// the telemetry exporter's Stats method when one is attached.
	ExportStatsFn func() ExportStats

	// OnError, when set, receives connection-level errors that are not
	// clean shutdowns (EOF, closed connections). When nil such errors are
	// counted but otherwise dropped; ConnErrors exposes the count.
	OnError func(error)

	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	ln        net.Listener
	closed    bool
	connErrs  uint64
	servingWG sync.WaitGroup

	// Dispatch accounting (atomic): total requests dispatched and how
	// many were answered from the replay cache.
	requests   uint64
	replayHits uint64

	// Replay cache (under mu): responses to recently executed requests
	// by request ID, so a retransmitted call — same ID, usually on a
	// fresh connection after a redial — is answered from cache instead
	// of executed twice. Bounded two ways: FIFO count (replayCap) and
	// age (replayTTL) — a retransmit only ever arrives within a few
	// retry backoffs of the original, so entries older than the TTL are
	// dead weight that a long-lived low-rate agent would otherwise hold
	// for the capped maximum forever.
	replay     map[uint64]replayEntry
	replayFIFO []uint64

	// nowFn overrides the replay cache clock in tests; nil means
	// time.Now.
	nowFn func() time.Time

	// Drain cursor (under mu): how many fresh drains have been served,
	// and the last batch for re-delivery when the client's ack shows it
	// never received the previous response.
	drainSeq  uint64
	lastDrain []dataplane.Report
}

// replayCap bounds the replay cache by count; replayTTL bounds it by
// age. Retransmits arrive within a few RTTs of the original (the
// client's entire retry budget spans seconds), so anything minutes old
// has aged out of relevance.
const (
	replayCap = 256
	replayTTL = 2 * time.Minute
)

// replayEntry is one cached response plus its insertion time, for
// age-based eviction.
type replayEntry struct {
	resp *Response
	at   time.Time
}

// NewAgent wraps a switch and its module engine.
func NewAgent(sw *dataplane.Switch, eng *modules.Engine) *Agent {
	return &Agent{sw: sw, eng: eng, conns: map[net.Conn]struct{}{},
		replay: map[uint64]replayEntry{}}
}

// ReplayCacheLen returns the current replay cache population.
func (a *Agent) ReplayCacheLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.replay)
}

// ReplayHits returns how many requests were answered from the replay
// cache instead of re-executed.
func (a *Agent) ReplayHits() uint64 { return atomic.LoadUint64(&a.replayHits) }

// SetTelemetryHooks installs (or, with nils, removes) the telemetry
// exporter's epoch and stats hooks under the dispatch lock, so they may
// be swapped while the agent is serving.
func (a *Agent) SetTelemetryHooks(onEpoch func(), exportStats func() ExportStats) {
	a.mu.Lock()
	a.OnEpoch = onEpoch
	a.ExportStatsFn = exportStats
	a.mu.Unlock()
}

// Serve accepts controller connections until the listener closes (or
// Close is called).
func (a *Agent) Serve(ln net.Listener) error {
	a.connMu.Lock()
	if a.closed {
		a.connMu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	a.ln = ln
	a.servingWG.Add(1)
	a.connMu.Unlock()
	defer a.servingWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.HandleConn(conn)
		}()
	}
}

// track registers a live connection; it reports false when the agent is
// already closed (the connection must not be served).
func (a *Agent) track(conn net.Conn) bool {
	a.connMu.Lock()
	defer a.connMu.Unlock()
	if a.closed {
		return false
	}
	a.conns[conn] = struct{}{}
	return true
}

func (a *Agent) untrack(conn net.Conn) {
	a.connMu.Lock()
	delete(a.conns, conn)
	a.connMu.Unlock()
}

// surfaceErr routes a non-clean connection error to the error callback.
func (a *Agent) surfaceErr(err error) {
	a.connMu.Lock()
	a.connErrs++
	cb := a.OnError
	a.connMu.Unlock()
	if cb != nil {
		cb(err)
	}
}

// ConnErrors returns how many connections ended with a non-clean error.
func (a *Agent) ConnErrors() uint64 {
	a.connMu.Lock()
	defer a.connMu.Unlock()
	return a.connErrs
}

// cleanConnErr reports whether err is an expected way for a control
// connection to end: the peer hung up or the socket was closed under us.
func cleanConnErr(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed)
}

// HandleConn serves one controller connection (exported so tests can
// drive net.Pipe ends directly). Errors other than a clean peer
// shutdown are surfaced through OnError instead of being swallowed.
func (a *Agent) HandleConn(conn net.Conn) {
	if !a.track(conn) {
		conn.Close()
		return
	}
	defer func() {
		a.untrack(conn)
		conn.Close()
	}()
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			if !cleanConnErr(err) {
				a.surfaceErr(fmt.Errorf("rpc: agent read: %w", err))
			}
			return
		}
		resp := a.dispatch(&req)
		if err := WriteFrame(conn, resp); err != nil {
			if !cleanConnErr(err) {
				a.surfaceErr(fmt.Errorf("rpc: agent write: %w", err))
			}
			return
		}
	}
}

// Close shuts the agent down: the listener stops accepting, every live
// connection is closed, and Close blocks until all handler goroutines
// have drained. The agent cannot be reused afterwards.
func (a *Agent) Close() error {
	a.connMu.Lock()
	if a.closed {
		a.connMu.Unlock()
		return nil
	}
	a.closed = true
	ln := a.ln
	conns := make([]net.Conn, 0, len(a.conns))
	for c := range a.conns {
		conns = append(conns, c)
	}
	a.connMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	a.servingWG.Wait()
	a.wg.Wait()
	return nil
}

func (a *Agent) dispatch(req *Request) *Response {
	a.mu.Lock()
	defer a.mu.Unlock()
	atomic.AddUint64(&a.requests, 1)
	now := time.Now()
	if a.nowFn != nil {
		now = a.nowFn()
	}
	// Age out stale entries first — replayFIFO is insertion-ordered, so
	// expired entries cluster at the front.
	for len(a.replayFIFO) > 0 {
		id := a.replayFIFO[0]
		if now.Sub(a.replay[id].at) <= replayTTL {
			break
		}
		delete(a.replay, id)
		a.replayFIFO = a.replayFIFO[1:]
	}
	if req.ID != 0 {
		if cached, ok := a.replay[req.ID]; ok {
			// A retransmit of a call that already executed: replay the
			// original response instead of running the op twice.
			atomic.AddUint64(&a.replayHits, 1)
			return cached.resp
		}
	}
	resp := a.execute(req)
	resp.ID = req.ID
	if req.ID != 0 {
		if len(a.replayFIFO) >= replayCap {
			delete(a.replay, a.replayFIFO[0])
			a.replayFIFO = a.replayFIFO[1:]
		}
		a.replay[req.ID] = replayEntry{resp: resp, at: now}
		a.replayFIFO = append(a.replayFIFO, req.ID)
	}
	return resp
}

// errResponse classifies an engine error so retrying controllers can
// distinguish level-triggered outcomes from real failures.
func errResponse(err error) *Response {
	resp := &Response{Error: err.Error()}
	if errors.Is(err, modules.ErrAlreadyInstalled) {
		resp.Code = CodeAlreadyInstalled
	} else if errors.Is(err, modules.ErrNotInstalled) {
		resp.Code = CodeNotInstalled
	}
	return resp
}

// execute runs one request under the dispatch lock.
func (a *Agent) execute(req *Request) *Response {
	switch req.Type {
	case typeInstall:
		if req.Program == nil {
			return &Response{Error: "install without program"}
		}
		if err := a.eng.Install(req.Program); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case typeRemove:
		if err := a.eng.Remove(req.QID); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case typeStats:
		return &Response{OK: true, Stats: &Stats{
			RuleEntries: a.eng.Layout().TotalRuleEntries(),
			Installed:   a.eng.InstalledCount(),
		}}
	case typeDrain:
		return a.drain(req)
	case typeEpoch:
		if a.OnEpoch != nil {
			a.OnEpoch()
		}
		// RollEpoch (not a bare Pipeline().NextEpoch()) folds any
		// worker-private bank shards into the canonical arrays before the
		// windows roll; OnEpoch's snapshot already merged, so this second
		// merge is an idempotent no-op.
		a.eng.RollEpoch()
		return &Response{OK: true}
	case typeExportStats:
		if a.ExportStatsFn == nil {
			return &Response{Error: "no telemetry exporter attached"}
		}
		st := a.ExportStatsFn()
		return &Response{OK: true, Export: &st}
	}
	return &Response{Error: fmt.Sprintf("unknown request type %q", req.Type)}
}

// drain serves drain_reports under the cursor discipline: an ack equal
// to the current cursor means the previous batch arrived, so the switch
// buffer is drained afresh; an ack one behind means the previous
// response was lost in flight, so that batch is re-delivered unchanged.
// Any other ack (an agent restart, or a client resync) serves fresh and
// jumps the cursor past the ack. The cursor assumes a single draining
// controller per agent, which is the deployment shape.
func (a *Agent) drain(req *Request) *Response {
	switch {
	case req.DrainAck == a.drainSeq:
		a.lastDrain = a.sw.DrainReports()
		a.drainSeq++
	case req.DrainAck == a.drainSeq-1:
		// Re-delivery: the client never saw the cursor advance.
	default:
		a.lastDrain = a.sw.DrainReports()
		if req.DrainAck > a.drainSeq {
			a.drainSeq = req.DrainAck
		}
		a.drainSeq++
	}
	return &Response{OK: true, Reports: a.lastDrain, Cursor: a.drainSeq}
}

// Options harden a Client against an imperfect network. The zero value
// reproduces the original behavior: no deadlines, no retries, no
// redial.
type Options struct {
	// Timeout bounds each attempt's write and read via the connection's
	// SetWriteDeadline/SetReadDeadline (0 = no deadline). A stalled
	// agent therefore cannot block a call past Timeout per attempt.
	Timeout time.Duration

	// Retries is how many additional attempts follow a transient
	// transport failure (resets, timeouts, torn frames). Application
	// errors from the agent are never retried. Every client operation
	// is retry-safe: the agent's replay cache deduplicates by request
	// ID and drains carry an explicit cursor.
	Retries int

	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts (defaults 10ms and 1s). Each sleep is jittered
	// to half-to-full of the nominal step.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Seed drives the backoff jitter (deterministic tests).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.BackoffBase <= 0 {
		o.BackoffBase = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	return o
}

// Counters is the client's running reliability accounting.
type Counters struct {
	Retries uint64 // attempts beyond the first
	Redials uint64 // connections re-established
}

// Client is the controller-side endpoint.
type Client struct {
	mu   sync.Mutex // serializes round trips
	opts Options
	rng  *rand.Rand

	redial func() (net.Conn, error)

	// stateMu guards conn and closed so Close can sever an in-flight
	// round trip without waiting for mu.
	stateMu sync.Mutex
	conn    net.Conn
	closed  bool
	closeCh chan struct{}

	drainAck uint64 // highest drain cursor received (under mu)

	retries  uint64
	redials  uint64
	calls    uint64
	callErrs uint64

	// latency records whole-call round-trip times (including retries and
	// backoff sleeps — the latency the caller experienced). Always
	// allocated, so observation needs no nil check or registration race.
	latency *obs.Histogram
}

// reqSeq hands out process-unique request IDs; reqNonce separates
// clients in different processes talking to the same agent.
var (
	reqSeq   uint64
	reqNonce = uint64(rand.Uint32()) << 32
)

func nextReqID() uint64 { return reqNonce | (atomic.AddUint64(&reqSeq, 1) & 0xFFFFFFFF) }

// Dial connects to an agent's TCP address with zero Options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to an agent's TCP address with the given
// hardening options; transient failures redial the same address.
func DialOptions(addr string, opts Options) (*Client, error) {
	redial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	conn, err := redial()
	if err != nil {
		return nil, fmt.Errorf("rpc: dialing agent: %w", err)
	}
	return NewClientOptions(conn, opts, redial), nil
}

// NewClient wraps an established connection (e.g. one end of net.Pipe)
// with zero Options.
func NewClient(conn net.Conn) *Client { return NewClientOptions(conn, Options{}, nil) }

// NewClientOptions wraps an established connection with hardening
// options. redial, when non-nil, re-establishes the transport after a
// transient failure (between attempts and across calls).
func NewClientOptions(conn net.Conn, opts Options, redial func() (net.Conn, error)) *Client {
	opts = opts.withDefaults()
	return &Client{
		conn: conn, opts: opts, redial: redial,
		rng:     rand.New(rand.NewSource(opts.Seed + 1)),
		closeCh: make(chan struct{}),
		latency: obs.NewHistogram(obs.DefLatencyBuckets()),
	}
}

// Close severs the connection — including one with a round trip in
// flight, which then fails with ErrClientClosed — and makes every
// subsequent call fail fast with ErrClientClosed.
func (c *Client) Close() error {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	close(c.closeCh)
	c.stateMu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Counters returns the retry/redial accounting.
func (c *Client) Counters() Counters {
	return Counters{
		Retries: atomic.LoadUint64(&c.retries),
		Redials: atomic.LoadUint64(&c.redials),
	}
}

// isClosed reports whether Close has run.
func (c *Client) isClosed() bool {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.closed
}

// currentConn returns the live connection, redialing if the previous
// one was torn down. It returns ErrClientClosed after Close.
func (c *Client) currentConn() (net.Conn, error) {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		conn := c.conn
		c.stateMu.Unlock()
		return conn, nil
	}
	c.stateMu.Unlock()
	if c.redial == nil {
		return nil, errors.New("rpc: connection lost and no redial configured")
	}
	conn, err := c.redial()
	if err != nil {
		return nil, err
	}
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		conn.Close()
		return nil, ErrClientClosed
	}
	c.conn = conn
	c.stateMu.Unlock()
	atomic.AddUint64(&c.redials, 1)
	return conn, nil
}

// dropConn tears down the connection after a transport failure so the
// next attempt starts on a fresh dial.
func (c *Client) dropConn(conn net.Conn) {
	conn.Close()
	c.stateMu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.stateMu.Unlock()
}

// permanent reports whether a transport error cannot be cured by a
// retry (oversized or unencodable frames are deterministic).
func permanent(err error) bool {
	return errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrMalformedResponse)
}

// attempt runs one write/read exchange on conn under the per-attempt
// deadline. Any returned error is transport-level.
func (c *Client) attempt(conn net.Conn, req *Request) (*Response, error) {
	if c.opts.Timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(c.opts.Timeout))
	}
	if err := WriteFrame(conn, req); err != nil {
		return nil, err
	}
	if c.opts.Timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(c.opts.Timeout))
	}
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		return nil, err
	}
	if c.opts.Timeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	if resp.ID != 0 && resp.ID != req.ID {
		// A late response to an earlier (timed-out) request: the stream
		// is desynchronized beyond repair — tear it down and retry.
		return nil, fmt.Errorf("rpc: response for request %d on call %d: stream desynchronized", resp.ID, req.ID)
	}
	return &resp, nil
}

// roundTripLocked performs one logical call with deadlines, retries,
// and redial, recording call count, errors, and whole-call latency
// (retries and backoff included — what the caller experienced).
func (c *Client) roundTripLocked(req *Request) (*Response, error) {
	start := time.Now()
	resp, err := c.attemptsLocked(req)
	c.latency.Observe(uint64(time.Since(start)))
	atomic.AddUint64(&c.calls, 1)
	if err != nil {
		atomic.AddUint64(&c.callErrs, 1)
	}
	return resp, err
}

// attemptsLocked is the retry loop behind roundTripLocked. The caller
// holds c.mu. The request keeps one ID across every attempt, so the
// agent's replay cache makes retries exactly-once.
func (c *Client) attemptsLocked(req *Request) (*Response, error) {
	req.ID = nextReqID()
	backoff := c.opts.BackoffBase
	for attempt := 0; ; attempt++ {
		if c.isClosed() {
			return nil, ErrClientClosed
		}
		conn, err := c.currentConn()
		if err == nil {
			var resp *Response
			resp, err = c.attempt(conn, req)
			if err == nil {
				if !resp.OK {
					return nil, &AgentError{Code: resp.Code, Msg: resp.Error}
				}
				return resp, nil
			}
			if c.isClosed() {
				return nil, ErrClientClosed
			}
			if permanent(err) {
				return nil, err
			}
			c.dropConn(conn)
		} else if errors.Is(err, ErrClientClosed) {
			return nil, err
		}
		if attempt >= c.opts.Retries {
			return nil, err
		}
		atomic.AddUint64(&c.retries, 1)
		// Capped exponential backoff, jittered to half-to-full.
		sleep := backoff/2 + time.Duration(c.rng.Int63n(int64(backoff/2)+1))
		select {
		case <-time.After(sleep):
		case <-c.closeCh:
			return nil, ErrClientClosed
		}
		if backoff *= 2; backoff > c.opts.BackoffMax {
			backoff = c.opts.BackoffMax
		}
	}
}

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTripLocked(req)
}

// Install loads a compiled program into the remote engine.
func (c *Client) Install(p *modules.Program) error {
	_, err := c.roundTrip(&Request{Type: typeInstall, Program: p})
	return err
}

// Remove uninstalls a query by QID.
func (c *Client) Remove(qid int) error {
	_, err := c.roundTrip(&Request{Type: typeRemove, QID: qid})
	return err
}

// Stats fetches the remote rule/program counts.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(&Request{Type: typeStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("%w: stats", ErrMalformedResponse)
	}
	return *resp.Stats, nil
}

// ExportStats fetches the agent's telemetry-exporter counters.
func (c *Client) ExportStats() (ExportStats, error) {
	resp, err := c.roundTrip(&Request{Type: typeExportStats})
	if err != nil {
		return ExportStats{}, err
	}
	if resp.Export == nil {
		return ExportStats{}, fmt.Errorf("%w: export stats", ErrMalformedResponse)
	}
	return *resp.Export, nil
}

// DrainReports pulls and clears the remote report buffer. The call is
// retry-safe: the drain cursor acknowledges each received batch, so a
// drain retried after a lost response re-delivers that batch instead of
// dropping it or delivering it twice.
func (c *Client) DrainReports() ([]dataplane.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.roundTripLocked(&Request{Type: typeDrain, DrainAck: c.drainAck})
	if err != nil {
		return nil, err
	}
	c.drainAck = resp.Cursor
	return resp.Reports, nil
}

// NextEpoch rolls the remote register windows (the controller's 100 ms
// tick).
func (c *Client) NextEpoch() error {
	_, err := c.roundTrip(&Request{Type: typeEpoch})
	return err
}
