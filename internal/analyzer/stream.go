package analyzer

import (
	"github.com/newton-net/newton/internal/telemetry"
)

// ConsumeEvents feeds a Collector from a telemetry-service
// subscription: every network-wide-deduplicated alert event becomes one
// collector ingest, so the same per-window flagged-key accounting the
// experiments use works unchanged over the push-based merged stream. It
// blocks until the channel closes (the service shut down or the
// subscription was cancelled) and returns how many alerts it consumed.
func ConsumeEvents(c *Collector, events <-chan telemetry.Event) int {
	n := 0
	for ev := range events {
		if ev.Kind != telemetry.EventAlert {
			continue
		}
		c.Add(ev.Report)
		n++
	}
	return n
}

// Consume launches ConsumeEvents in the background and returns a done
// channel that yields the consumed-alert count when the stream ends.
func Consume(c *Collector, events <-chan telemetry.Event) <-chan int {
	done := make(chan int, 1)
	go func() { done <- ConsumeEvents(c, events) }()
	return done
}
