// Package fields defines the global header-field set that Newton modules
// operate on, together with the per-packet metadata sets used by the
// compact module layout.
//
// Newton's key-selection module (K) takes "a list of global fields as
// input" and conceals unneeded fields with a bit-mask action (§4.1 of the
// paper). We model the global field set as a fixed vector of 64-bit
// values indexed by ID, and a Mask as a parallel vector of per-field bit
// masks. Masking with an all-ones entry keeps the field, an all-zeros
// entry conceals it, and intermediate masks express derived keys such as
// IP prefixes or discretized lengths — exactly the flexible bit-mask
// logic the paper describes.
package fields

import (
	"fmt"
	"strings"
)

// ID identifies one field in the global header-field set.
type ID uint8

// The global header-field set. It mirrors the fields Sonata/Newton
// queries touch: the 5-tuple, TCP control flags, packet length, TTL and
// TCP sequence numbers, plus ingress metadata (timestamp, port).
const (
	Timestamp ID = iota // ingress timestamp, nanoseconds of virtual time
	InPort              // ingress port index
	SrcIP               // IPv4 source address
	DstIP               // IPv4 destination address
	Proto               // IP protocol number
	SrcPort             // L4 source port (0 for non-TCP/UDP)
	DstPort             // L4 destination port (0 for non-TCP/UDP)
	TCPFlags            // TCP control flags (0 for non-TCP)
	PktLen              // total packet length in bytes
	TTL                 // IP time-to-live
	TCPSeq              // TCP sequence number
	TCPAck              // TCP acknowledgement number
	NumFields           // number of fields in the global set
)

var idNames = [NumFields]string{
	"ts", "in_port", "sip", "dip", "proto",
	"sport", "dport", "tcp_flags", "len", "ttl", "tcp_seq", "tcp_ack",
}

// String returns the short field name used in query source and rule dumps.
func (id ID) String() string {
	if id < NumFields {
		return idNames[id]
	}
	return fmt.Sprintf("field(%d)", uint8(id))
}

// ParseID resolves a short field name back to its ID.
func ParseID(name string) (ID, error) {
	for i, n := range idNames {
		if n == name {
			return ID(i), nil
		}
	}
	return 0, fmt.Errorf("fields: unknown field %q", name)
}

// Width returns the natural bit width of the field on the wire. The
// simulator stores every field in 64 bits, but resource accounting (PHV
// and crossbar usage) and mask validation use the natural width.
func (id ID) Width() int {
	switch id {
	case Timestamp:
		return 48
	case InPort:
		return 9
	case SrcIP, DstIP, TCPSeq, TCPAck:
		return 32
	case Proto, TTL:
		return 8
	case SrcPort, DstPort, PktLen:
		return 16
	case TCPFlags:
		return 8
	}
	return 0
}

// MaxValue returns the largest value representable in the field's
// natural width.
func (id ID) MaxValue() uint64 {
	w := id.Width()
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// Vector holds one value per global field. It is the "global header
// fields set" a packet presents to the Newton modules.
type Vector [NumFields]uint64

// Get returns the value of field id.
func (v *Vector) Get(id ID) uint64 { return v[id] }

// Set assigns the value of field id.
func (v *Vector) Set(id ID, val uint64) { v[id] = val }

// Equal reports whether two vectors hold identical values.
func (v *Vector) Equal(o *Vector) bool { return *v == *o }

// String renders only the non-zero fields, for logs and golden tests.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for id := ID(0); id < NumFields; id++ {
		if v[id] == 0 {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%s=%d", id, v[id])
	}
	b.WriteByte('}')
	return b.String()
}

// Mask is a per-field bit mask applied by the key-selection module. A
// zero entry conceals the field entirely; ^uint64(0) (clamped to the
// field width) keeps it; anything in between derives a sub-key (e.g. a
// /24 prefix of an address).
type Mask [NumFields]uint64

// KeepAll returns a mask that keeps every field at its natural width.
func KeepAll() Mask {
	var m Mask
	for id := ID(0); id < NumFields; id++ {
		m[id] = id.MaxValue()
	}
	return m
}

// Keep returns a mask that keeps exactly the given fields at full width.
func Keep(ids ...ID) Mask {
	var m Mask
	for _, id := range ids {
		m[id] = id.MaxValue()
	}
	return m
}

// WithBits returns a copy of the mask with field id masked to the given
// bit pattern, for derived keys such as prefixes.
func (m Mask) WithBits(id ID, bits uint64) Mask {
	m[id] = bits & id.MaxValue()
	return m
}

// Prefix returns a mask bit pattern selecting the top plen bits of a
// field (e.g. Prefix(SrcIP, 24) for a /24).
func Prefix(id ID, plen int) uint64 {
	w := id.Width()
	if plen >= w {
		return id.MaxValue()
	}
	if plen <= 0 {
		return 0
	}
	return (id.MaxValue() >> uint(w-plen)) << uint(w-plen)
}

// Apply masks the vector, concealing or deriving fields, and returns the
// resulting operation keys.
func (m Mask) Apply(v *Vector) Vector {
	var out Vector
	(&m).ApplyInto(v, &out)
	return out
}

// ApplyInto masks v into out in place — the per-packet form of Apply,
// avoiding two vector copies through the stack.
func (m *Mask) ApplyInto(v, out *Vector) {
	for id := ID(0); id < NumFields; id++ {
		out[id] = v[id] & m[id]
	}
}

// Fields lists the IDs the mask keeps (any non-zero entry).
func (m Mask) Fields() []ID {
	var ids []ID
	for id := ID(0); id < NumFields; id++ {
		if m[id] != 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// IsZero reports whether the mask conceals every field.
func (m Mask) IsZero() bool { return m == Mask{} }

// Equal reports whether two masks select identical keys.
func (m Mask) Equal(o Mask) bool { return m == o }

// String renders the kept fields, e.g. "(dip, sip)" or "(sip/24)".
func (m Mask) String() string {
	var parts []string
	for id := ID(0); id < NumFields; id++ {
		switch m[id] {
		case 0:
		case id.MaxValue():
			parts = append(parts, id.String())
		default:
			parts = append(parts, fmt.Sprintf("%s&%#x", id, m[id]))
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Bytes serializes the masked fields in ID order into a compact byte
// string suitable for hashing. Only fields the mask keeps contribute, so
// two packets with equal operation keys hash identically regardless of
// concealed fields.
func (m Mask) Bytes(v *Vector, dst []byte) []byte {
	for id := ID(0); id < NumFields; id++ {
		if m[id] == 0 {
			continue
		}
		x := v[id] & m[id]
		dst = append(dst,
			byte(x>>56), byte(x>>48), byte(x>>40), byte(x>>32),
			byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
	}
	return dst
}

// MetadataSet is one of the two independent metadata sets of the compact
// module layout (§4.2): operation keys written by K, a hash result
// written by H, and a state result written by S.
type MetadataSet struct {
	OpKeys      Vector
	OpKeyMask   Mask // which fields the keys cover (for reporting)
	HashResult  uint64
	StateResult uint64
}

// GlobalSigned interprets a PHV global result as the signed value the
// result-process merge arithmetic works in.
func GlobalSigned(g uint64) int64 { return int64(g) }

// Reset clears the metadata set between packets.
func (ms *MetadataSet) Reset() { *ms = MetadataSet{} }

// PHV is the per-packet header vector the pipeline threads through the
// stages: the parsed global fields, the two metadata sets of the compact
// layout, the shared global result that R modules merge into, and the
// query-chain bookkeeping written by newton_init.
type PHV struct {
	Fields Vector

	Sets         [2]MetadataSet
	GlobalResult uint64

	// QueryID is the chain selected by newton_init; Step is the index of
	// the next primitive to execute within that chain. Stopped is set by
	// an R module that terminates the query for this packet.
	QueryID int
	Step    int
	Stopped bool

	// KeyBuf is engine scratch for serializing operation keys into hash
	// input. It lives on the PHV so the serialization buffer shares the
	// execution context's heap allocation instead of escaping per packet
	// (the CRC fast paths are assembly, which defeats stack allocation
	// of the caller's buffer).
	KeyBuf [8 * int(NumFields)]byte
}

// Reset clears everything except the parsed fields.
func (p *PHV) Reset() {
	f := p.Fields
	*p = PHV{Fields: f, QueryID: -1}
}
