// Package dataplane simulates a PISA-style programmable switch pipeline:
// match-action tables with runtime rule updates, register arrays with
// stateful ALUs, physical stages with per-resource-type capacity
// accounting (crossbar, SRAM, TCAM, VLIW, hash bits, stateful ALUs,
// gateways), an L3 forwarding table, and mirroring. It is the substrate
// Newton's reconfigurable modules are built on; it stands in for the
// Tofino ASIC of the paper's testbed.
//
// The simulator is deliberately behavioural, not timing-accurate: every
// evaluation quantity in the paper (rule counts, stage counts, message
// counts, register sizes, forwarding interruption) is a count or a
// discipline, not a silicon latency.
package dataplane

import (
	"fmt"
	"sort"
	"sync"
)

// MatchKind distinguishes the matching disciplines a table supports. All
// kinds reduce to ternary matching internally (exact = full mask, LPM =
// prefix mask with prefix-length priority), mirroring how RMT unifies
// them over TCAM/SRAM.
type MatchKind int

const (
	// MatchExact matches all columns under full masks.
	MatchExact MatchKind = iota
	// MatchTernary matches value/mask pairs with explicit priorities.
	MatchTernary
	// MatchLPM is longest-prefix match on the first column.
	MatchLPM
)

// String names the match kind as P4 would.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchTernary:
		return "ternary"
	case MatchLPM:
		return "lpm"
	}
	return fmt.Sprintf("matchkind(%d)", int(k))
}

// Action is what a matching rule executes. Concrete actions are defined
// by whoever programs the table (the modules package for Newton tables,
// the switch itself for forwarding).
type Action interface {
	// ActionName identifies the action for rule dumps and tests.
	ActionName() string
}

// Rule is one table entry: per-column value/mask pairs, a priority, and
// an action. Higher priority wins; insertion order breaks ties (as if
// earlier rules sat higher in TCAM).
type Rule struct {
	ID       int
	Priority int
	Values   []uint64
	Masks    []uint64
	Action   Action

	seq int // insertion sequence for stable tie-breaking
}

// Matches reports whether the rule matches the given column values.
func (r *Rule) Matches(vals []uint64) bool {
	for i := range r.Values {
		if vals[i]&r.Masks[i] != r.Values[i]&r.Masks[i] {
			return false
		}
	}
	return true
}

// Table is a match-action table with runtime-updatable rules — the
// reconfigurable component Newton leans on (§2.1: "match-action table
// rules belong to [runtime reconfigurability]").
type Table struct {
	Name       string
	Kind       MatchKind
	Cols       int // number of match columns
	MaxEntries int

	mu     sync.RWMutex
	rules  []*Rule // sorted: priority desc, then seq asc
	byID   map[int]*Rule
	nextID int
	seq    int

	// Default is executed when no rule matches (may be nil).
	Default Action
}

// NewTable builds an empty table.
func NewTable(name string, kind MatchKind, cols, maxEntries int) *Table {
	if cols <= 0 {
		panic("dataplane: table needs at least one match column")
	}
	if maxEntries <= 0 {
		maxEntries = 1 << 20
	}
	return &Table{
		Name: name, Kind: kind, Cols: cols, MaxEntries: maxEntries,
		byID: make(map[int]*Rule),
	}
}

// AddRule installs a rule at runtime and returns its ID. Exact-match
// rules may omit masks (full masks are implied). For LPM the mask of the
// first column determines priority (longer prefix wins).
func (t *Table) AddRule(values, masks []uint64, priority int, action Action) (int, error) {
	if len(values) != t.Cols {
		return 0, fmt.Errorf("dataplane: table %s wants %d columns, got %d", t.Name, t.Cols, len(values))
	}
	if masks == nil {
		masks = make([]uint64, t.Cols)
		for i := range masks {
			masks[i] = ^uint64(0)
		}
	}
	if len(masks) != t.Cols {
		return 0, fmt.Errorf("dataplane: table %s mask arity mismatch", t.Name)
	}
	if t.Kind == MatchExact {
		for i, m := range masks {
			if m != ^uint64(0) {
				return 0, fmt.Errorf("dataplane: exact table %s got partial mask on column %d", t.Name, i)
			}
		}
	}
	if t.Kind == MatchLPM {
		priority = prefixLen(masks[0])
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.rules) >= t.MaxEntries {
		return 0, fmt.Errorf("dataplane: table %s full (%d entries)", t.Name, t.MaxEntries)
	}
	t.nextID++
	t.seq++
	r := &Rule{
		ID: t.nextID, Priority: priority,
		Values: append([]uint64(nil), values...),
		Masks:  append([]uint64(nil), masks...),
		Action: action, seq: t.seq,
	}
	t.rules = append(t.rules, r)
	sort.SliceStable(t.rules, func(i, j int) bool {
		if t.rules[i].Priority != t.rules[j].Priority {
			return t.rules[i].Priority > t.rules[j].Priority
		}
		return t.rules[i].seq < t.rules[j].seq
	})
	t.byID[r.ID] = r
	return r.ID, nil
}

// RemoveRule deletes a rule by ID at runtime.
func (t *Table) RemoveRule(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; !ok {
		return fmt.Errorf("dataplane: table %s has no rule %d", t.Name, id)
	}
	delete(t.byID, id)
	for i, r := range t.rules {
		if r.ID == id {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			break
		}
	}
	return nil
}

// Lookup returns the highest-priority matching rule, or nil.
func (t *Table) Lookup(vals ...uint64) *Rule {
	if len(vals) != t.Cols {
		panic(fmt.Sprintf("dataplane: table %s lookup with %d values, want %d", t.Name, len(vals), t.Cols))
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rules {
		if r.Matches(vals) {
			return r
		}
	}
	return nil
}

// LookupAll returns every matching rule in priority order. Newton's
// newton_init uses it to dispatch one packet to every query chain that
// monitors its traffic class ("Newton chains the queries monitoring the
// same traffic", §4.1).
func (t *Table) LookupAll(vals ...uint64) []*Rule {
	if len(vals) != t.Cols {
		panic(fmt.Sprintf("dataplane: table %s lookup with %d values, want %d", t.Name, len(vals), t.Cols))
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*Rule
	for _, r := range t.rules {
		if r.Matches(vals) {
			out = append(out, r)
		}
	}
	return out
}

// Entries returns the current rule count.
func (t *Table) Entries() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rules)
}

// Clear removes all rules (used by the Sonata reboot model).
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = nil
	t.byID = make(map[int]*Rule)
}

// Rules returns a snapshot of the rules in match order.
func (t *Table) Rules() []*Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Rule(nil), t.rules...)
}

func prefixLen(mask uint64) int {
	n := 0
	for mask != 0 {
		n += int(mask & 1)
		mask >>= 1
	}
	return n
}
