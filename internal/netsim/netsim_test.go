package netsim

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/placement"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

func linearNet(t *testing.T, switches, stages int) (*Network, int, int) {
	t.Helper()
	topo, h1, h2 := topology.Linear(switches)
	net, err := New(topo, Config{Stages: stages, ArraySize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	return net, h1, h2
}

func TestDeliveryBasics(t *testing.T) {
	net, h1, h2 := linearNet(t, 3, 12)
	pkt := &packet.Packet{TS: 5, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 1, Dst: 2},
		TCP: &packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagSYN}}
	path, ok := net.Deliver(pkt, h1, h2)
	if !ok || len(path) != 3 {
		t.Fatalf("delivery failed: %v %v", path, ok)
	}
	d, dr := net.Stats()
	if d != 1 || dr != 0 {
		t.Errorf("stats = %d/%d", d, dr)
	}
	net.ResetStats()
	if d, _ := net.Stats(); d != 0 {
		t.Error("ResetStats failed")
	}
}

func TestOutageDropsTraffic(t *testing.T) {
	net, h1, h2 := linearNet(t, 3, 12)
	mid := net.Topo.EdgeSwitches()[1]
	net.SetOutage(mid, 100, 200)
	mk := func(ts uint64) *packet.Packet {
		return &packet.Packet{TS: ts, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 1, Dst: 2},
			TCP: &packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK}}
	}
	if _, ok := net.Deliver(mk(50), h1, h2); !ok {
		t.Error("pre-outage packet dropped")
	}
	if _, ok := net.Deliver(mk(150), h1, h2); ok {
		t.Error("in-outage packet delivered")
	}
	if _, ok := net.Deliver(mk(250), h1, h2); !ok {
		t.Error("post-outage packet dropped")
	}
}

func TestClockAndEpochs(t *testing.T) {
	net, _, _ := linearNet(t, 1, 12)
	sw := net.Node(net.Topo.Switches()[0])
	ra := sw.Layout.ArrayAt(1, 0)
	ra.Exec(1 /* write */, 0, 7)
	net.AdvanceTo(uint64(250 * time.Millisecond)) // crosses 2 window boundaries
	if ra.Epoch() != 2 {
		t.Errorf("epochs rolled %d times, want 2", ra.Epoch())
	}
	// Clock never goes backwards.
	net.AdvanceTo(0)
	if net.Clock() != uint64(250*time.Millisecond) {
		t.Error("clock went backwards")
	}
}

// installOn compiles q and installs it on the given switches.
func installOn(t *testing.T, net *Network, q *query.Query, o compiler.Options, sws []int) {
	t.Helper()
	for _, id := range sws {
		p, err := compiler.Compile(q, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Node(id).Eng.Install(p); err != nil {
			t.Fatal(err)
		}
	}
}

func runTrace(t *testing.T, net *Network, tr *trace.Trace, h1, h2 int) {
	t.Helper()
	for _, pkt := range tr.Packets {
		net.Deliver(pkt, h1, h2)
	}
}

func TestReplicatedQueryReportsPerHop(t *testing.T) {
	// The sole-query-execution model (Fig. 13's baselines): the same
	// query on all 3 switches reports 3x.
	net, h1, h2 := linearNet(t, 3, 12)
	o := compiler.AllOpts()
	o.QID = 1
	o.Width = 1 << 14
	installOn(t, net, query.Q1(40), o, net.Topo.Switches())
	tr := trace.Generate(trace.Config{Seed: 1, Flows: 0, Duration: 90 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A000001, Packets: 100})
	runTrace(t, net, tr, h1, h2)
	reports := net.DrainReports()
	if len(reports) != 3 {
		t.Fatalf("replicated execution: %d reports, want 3 (one per hop)", len(reports))
	}
}

func TestShardedQueryReportsOnce(t *testing.T) {
	// Cross-switch execution (Fig. 13, Newton): the switches partition
	// the key space; monitoring data is reported once regardless of path
	// length.
	net, h1, h2 := linearNet(t, 3, 12)
	sws := net.Topo.Switches()
	for i, id := range sws {
		o := compiler.AllOpts()
		o.QID = 1
		o.Width = 1 << 14
		o.ShardIndex, o.ShardCount = uint32(i), uint32(len(sws))
		p, err := compiler.Compile(query.Q1(40), o)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Node(id).Eng.Install(p); err != nil {
			t.Fatal(err)
		}
	}
	victims := []uint32{0x0A000001, 0x0A000002, 0x0A000003, 0x0A000004}
	ovs := make([]trace.Overlay, len(victims))
	for i, v := range victims {
		ovs[i] = trace.SYNFlood{Victim: v, Packets: 100}
	}
	tr := trace.Generate(trace.Config{Seed: 2, Flows: 0, Duration: 90 * time.Millisecond}, ovs...)
	runTrace(t, net, tr, h1, h2)
	reports := net.DrainReports()
	if len(reports) != len(victims) {
		t.Fatalf("sharded execution: %d reports, want %d (once per victim)", len(reports), len(victims))
	}
}

// TestCQESlicingInvariance is DESIGN invariant 3: a query sliced over
// two switches produces the same flagged keys as the whole query on one
// switch.
func TestCQESlicingInvariance(t *testing.T) {
	q := query.Q1(40)
	tr := trace.Generate(trace.Config{Seed: 3, Flows: 200, Duration: 200 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A000001, Packets: 300},
		trace.SYNFlood{Victim: 0x0A000002, Packets: 300})

	flaggedWith := func(partitioned bool) map[uint64]bool {
		net, h1, h2 := linearNet(t, 2, 12)
		o := compiler.AllOpts()
		o.QID = 1
		o.Width = 1 << 14
		p, err := compiler.Compile(q, o)
		if err != nil {
			t.Fatal(err)
		}
		sws := net.Topo.Switches()
		if partitioned {
			parts, err := modules.SliceProgram(p, 4) // 6-stage Q1 → 2 partitions
			if err != nil {
				t.Fatal(err)
			}
			if len(parts) != 2 {
				t.Fatalf("expected 2 partitions, got %d", len(parts))
			}
			for i, part := range parts {
				if err := net.Node(sws[i]).Eng.Install(part); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			if err := net.Node(sws[0]).Eng.Install(p); err != nil {
				t.Fatal(err)
			}
		}
		runTrace(t, net, tr, h1, h2)
		col := analyzer.NewCollector(uint64(q.Window), q.ReportKeys())
		col.AddAll(net.DrainReports())
		return col.FlaggedKeys()
	}

	whole := flaggedWith(false)
	sliced := flaggedWith(true)
	if len(whole) == 0 {
		t.Fatal("whole-switch run flagged nothing")
	}
	if len(whole) != len(sliced) {
		t.Fatalf("slicing changed results: whole=%v sliced=%v", whole, sliced)
	}
	for k := range whole {
		if !sliced[k] {
			t.Errorf("sliced execution missed key %d", k)
		}
	}
}

func TestCQESPHeaderTravelsAndStrips(t *testing.T) {
	net, _, _ := linearNet(t, 2, 12)
	o := compiler.AllOpts()
	o.QID = 1
	p, err := compiler.Compile(query.Q1(0), o)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := modules.SliceProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	sws := net.Topo.Switches()
	for i, part := range parts {
		if err := net.Node(sws[i]).Eng.Install(part); err != nil {
			t.Fatal(err)
		}
	}
	pkt := &packet.Packet{TS: 1, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 1, Dst: 9},
		TCP: &packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagSYN}}

	// After the first switch only, the packet must carry an SP header.
	net.AdvanceTo(pkt.TS)
	net.Node(sws[0]).DP.Process(pkt)
	if pkt.SP == nil {
		t.Fatal("no SP header after partition 0")
	}
	if pkt.SP.Part != 1 || pkt.SP.QID != 1 {
		t.Errorf("SP cursor = qid %d part %d", pkt.SP.QID, pkt.SP.Part)
	}
	// After the second (final) switch it must be stripped.
	net.Node(sws[1]).DP.Process(pkt)
	if pkt.SP != nil {
		t.Fatal("SP header not stripped at the last Newton hop")
	}
}

func TestNonParticipatingSwitchForwardsSP(t *testing.T) {
	net, _, _ := linearNet(t, 3, 12)
	sws := net.Topo.Switches()
	// Middle switch has no queries; SP must pass through untouched.
	o := compiler.AllOpts()
	o.QID = 1
	p, _ := compiler.Compile(query.Q1(0), o)
	parts, err := modules.SliceProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	net.Node(sws[0]).Eng.Install(parts[0])
	net.Node(sws[2]).Eng.Install(parts[1])

	pkt := &packet.Packet{TS: 1, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 1, Dst: 9},
		TCP: &packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagSYN}}
	net.AdvanceTo(1)
	net.Node(sws[0]).DP.Process(pkt)
	if pkt.SP == nil {
		t.Fatal("no SP after first hop")
	}
	net.Node(sws[1]).DP.Process(pkt) // empty middle switch
	if pkt.SP == nil {
		t.Fatal("middle switch stripped a snapshot it does not own")
	}
	net.Node(sws[2]).DP.Process(pkt)
	if pkt.SP != nil {
		t.Fatal("final partition did not strip the SP")
	}
	if net.Node(sws[2]).DP.PendingReports() != 1 {
		t.Error("final partition did not report")
	}
}

func TestDeliverUnroutable(t *testing.T) {
	topo := topology.New()
	h1 := topo.AddNode("h1", topology.Host)
	h2 := topo.AddNode("h2", topology.Host)
	net, err := New(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pkt := &packet.Packet{TS: 1, IP: packet.IPv4{Proto: packet.ProtoUDP, Src: 1, Dst: 2},
		UDP: &packet.UDP{}}
	if _, ok := net.Deliver(pkt, h1, h2); ok {
		t.Error("unroutable packet delivered")
	}
	if _, dr := net.Stats(); dr != 1 {
		t.Error("drop not counted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Stages != 12 || c.ArraySize != 4096 || c.Window != 100*time.Millisecond {
		t.Errorf("defaults = %+v", c)
	}
}

// TestDeferredExecutionFallback is §5.2's fallback: a 2-partition query
// on a 1-switch path cannot finish on the data plane; the software
// analyzer continues from the reported execution status and still flags
// the victims.
func TestDeferredExecutionFallback(t *testing.T) {
	q := query.Q1(40)
	net, h1, h2 := linearNet(t, 1, 12)
	o := compiler.AllOpts()
	o.QID = 1
	o.Width = 1 << 14
	p, err := compiler.Compile(q, o)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := modules.SliceProgram(p, 4) // 2 partitions, 1 switch
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("want 2 partitions, got %d", len(parts))
	}
	sw := net.Topo.Switches()[0]
	if err := net.Node(sw).Eng.Install(parts[0]); err != nil {
		t.Fatal(err)
	}

	tail := analyzer.NewDeferredTail(q)
	net.Deferred = func(pkt *packet.Packet) { tail.Process(pkt) }

	victim := uint32(0x0A000001)
	tr := trace.Generate(trace.Config{Seed: 12, Flows: 100, Duration: 90 * time.Millisecond},
		trace.SYNFlood{Victim: victim, Packets: 200})
	runTrace(t, net, tr, h1, h2)

	// The data plane alone reported nothing (its partition has no
	// threshold R)...
	if got := len(net.DrainReports()); got != 0 {
		t.Errorf("partition 0 reported %d times; the tail owns reporting", got)
	}
	// ...but the deferred tail caught the victim.
	if !tail.FlaggedKeys()[uint64(victim)] {
		t.Fatal("deferred execution missed the victim")
	}
	if tail.Packets == 0 {
		t.Fatal("no snapshots reached the analyzer")
	}
	// And it agrees with the exact reference.
	ref := analyzer.NewEngine(q)
	ref.Run(tr.Packets)
	for k := range ref.FlaggedKeys() {
		if !tail.FlaggedKeys()[k] {
			t.Errorf("deferred tail missed key %d", k)
		}
	}
}

// TestPlacementSurvivesLinkFailureEndToEnd is the network-wide story in
// one test: a partitioned query placed with Algorithm 2, a detection, a
// link failure that reroutes the attack, and a second detection on the
// new path — with no placement recomputation.
func TestPlacementSurvivesLinkFailureEndToEnd(t *testing.T) {
	topo := topology.FatTree(4)
	net, err := New(topo, Config{Stages: 12, ArraySize: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Q4(40)
	o := compiler.AllOpts()
	o.QID = 1
	logical, err := compiler.Compile(q, o)
	if err != nil {
		t.Fatal(err)
	}
	const stagesPer = 8
	parts, err := modules.SliceProgram(logical, stagesPer)
	if err != nil {
		t.Fatal(err)
	}
	pl, m, err := placement.Place(topo, topo.EdgeSwitches(), logical.NumStages(), stagesPer)
	if err != nil {
		t.Fatal(err)
	}
	if m != len(parts) {
		t.Fatalf("placement/slice disagree: %d vs %d", m, len(parts))
	}
	for sw, partIdxs := range pl {
		for _, d := range partIdxs {
			cp, err := modules.SliceProgram(logical, stagesPer)
			if err != nil {
				t.Fatal(err)
			}
			if err := net.Node(sw).Eng.Install(cp[d]); err != nil {
				t.Fatal(err)
			}
		}
	}

	hosts := topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	victim := uint32(0x0A000063)
	detect := func(label string, seed int64, base uint64) []int {
		tr := trace.Generate(trace.Config{Seed: seed, Flows: 100, Duration: 90 * time.Millisecond},
			trace.PortScan{Scanner: 0x0B000001, Victim: victim, Ports: 120})
		var attackPath []int
		for _, pkt := range tr.Packets {
			pkt.TS += base
			p, ok := net.Deliver(pkt, src, dst)
			if ok && pkt.TCP != nil && pkt.IP.Dst == victim {
				attackPath = p
			}
		}
		col := analyzer.NewCollector(uint64(q.Window), q.ReportKeys())
		col.AddAll(net.DrainReports())
		if !col.FlaggedKeys()[uint64(victim)] {
			t.Fatalf("%s: scan not detected", label)
		}
		return attackPath
	}

	path1 := detect("before failure", 21, 0)
	if len(path1) < 2 {
		t.Fatal("path too short")
	}
	if !topo.SetLink(path1[0], path1[1], false) {
		t.Fatal("failed to fail the link")
	}
	path2 := detect("after failure", 22, uint64(200*time.Millisecond))
	same := len(path1) == len(path2)
	if same {
		for i := range path1 {
			if path1[i] != path2[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("traffic did not reroute; the resilience claim is untested")
	}
}
