package controller

import (
	"fmt"
	"time"

	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
)

// ResizeWidth redeploys query qid at a new sketch width while KEEPING
// its qid — the accuracy refiner's primitive, so a width change never
// looks like a remove+install to consumers tracking the query. Per
// agent the old program is explicitly removed before the new width
// installs: Reconverge's already-installed tolerance is level-triggered
// and would otherwise accept the old geometry as converged, leaving the
// fleet with mixed widths that can never merge.
//
// On a mid-flight failure the touched agents are rolled back toward the
// OLD width and the old spec stays recorded, so a follow-up Reconverge
// heals the fleet to one uniform geometry either way. On success the
// attached analyzer is told (NoteResize) so the first post-resize epoch
// carries transition provenance, and the expected-contributor pin is
// recomputed for the new programs.
func (r *Remote) ResizeWidth(qid int, width uint32) (time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec, ok := r.specs[qid]
	if !ok {
		return 0, fmt.Errorf("controller: no deployment %d", qid)
	}
	if width == 0 {
		return 0, fmt.Errorf("controller: resize of %d to width 0", qid)
	}
	if spec.width == width {
		return 0, nil
	}

	mode := "replicate"
	switch {
	case spec.sharded:
		mode = "shard"
	case spec.stagesPer > 0:
		mode = "placement"
	}

	// Preflight: resizing past an offline member would leave the fleet
	// with mixed widths the analyzer can never merge — fail fast.
	for _, n := range spec.names {
		if r.offline[n] {
			inc(&r.obs.resizeFailures)
			return 0, fmt.Errorf("controller: resize of %d targets offline agent %q", qid, n)
		}
		if _, ok := r.agents[n]; !ok {
			inc(&r.obs.resizeFailures)
			return 0, fmt.Errorf("controller: no agent %q", n)
		}
	}

	next := &deploySpec{
		q: spec.q, width: width, names: spec.names,
		sharded: spec.sharded, stagesPer: spec.stagesPer, parts: spec.parts,
	}

	// touched lists agents whose old program has been removed (the agent
	// may hold the new width, part of it, or nothing). Rollback re-drives
	// exactly those toward the still-recorded old spec.
	var touched []string
	rollback := func(cause error) error {
		inc(&r.obs.resizeFailures)
		for ti, n := range spec.names {
			if ti >= len(touched) {
				break
			}
			if err := r.agents[n].Remove(qid); err != nil && !rpc.IsAgentCode(err, rpc.CodeNotInstalled) {
				inc(&r.obs.rollbackFailures)
				continue
			}
			progs, err := spec.programsFor(qid, ti)
			if err != nil {
				inc(&r.obs.rollbackFailures)
				continue
			}
			restored := true
			for _, p := range progs {
				if err := r.agents[n].Install(p); err != nil && !rpc.IsAgentCode(err, rpc.CodeAlreadyInstalled) {
					inc(&r.obs.rollbackFailures)
					restored = false
					break
				}
			}
			if restored {
				inc(&r.obs.rollbacks)
			}
		}
		return cause
	}

	maxRules := 0
	var first *modules.Program
	var contributors []string
	for i, n := range spec.names {
		c := r.agents[n]
		touched = append(touched, n)
		if err := c.Remove(qid); err != nil && !rpc.IsAgentCode(err, rpc.CodeNotInstalled) {
			return 0, rollback(fmt.Errorf("controller: resize remove on %q: %w", n, err))
		}
		progs, err := next.programsFor(qid, i)
		if err != nil {
			return 0, rollback(err)
		}
		contributes := false
		for _, p := range progs {
			if err := c.Install(p); err != nil {
				return 0, rollback(fmt.Errorf("controller: resize install on %q: %w", n, err))
			}
			if first == nil {
				first = p
			}
			if ownsState(p) {
				contributes = true
			}
			if rules := p.RuleCount() + 1; rules > maxRules {
				maxRules = rules
			}
		}
		if contributes {
			contributors = append(contributors, n)
		}
	}

	r.specs[qid] = next
	inc(&r.obs.resizes)
	if first != nil {
		r.obs.publish(qid, spec.q.Name, mode, first.Footprint())
	}
	if r.svc != nil {
		// Announce the transition BEFORE re-pinning: the first epoch the
		// restarted banks reach must read Partial, and the expected set
		// must reflect the new programs' state owners.
		r.svc.NoteResize(qid)
		r.svc.SetExpected(qid, contributors)
	}
	f := 0.9 + 0.2*r.rng.Float64()
	delay := time.Duration(float64(installBase+time.Duration(maxRules)*installPerRule) * f)
	return delay, nil
}

// Width returns the sketch width a deployment currently runs at (0 for
// unknown qids).
func (r *Remote) Width(qid int) uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if spec, ok := r.specs[qid]; ok {
		return spec.width
	}
	return 0
}
