package dataplane

import (
	"sync"
	"testing"
)

// TestTableConcurrentMutationRace hammers a table with rule mutation
// while readers run lookups over the copy-on-write snapshots. Run under
// -race this asserts the fast path's locking discipline: readers never
// observe a half-built rule set, and the pointers they get come from an
// immutable snapshot.
func TestTableConcurrentMutationRace(t *testing.T) {
	tb := NewTable("race", MatchTernary, 1, 1<<14)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		var live []int
		for i := 0; i < 3000; i++ {
			mask := ^uint64(0)
			if i%3 == 0 {
				mask = 0xF0 // keep some rules on the ternary scan path
			}
			id, err := tb.AddRule([]uint64{uint64(i % 64)}, []uint64{mask}, i%7, namedAction("w"))
			if err != nil {
				t.Errorf("AddRule: %v", err)
				return
			}
			live = append(live, id)
			if len(live) > 128 {
				if err := tb.RemoveRule(live[0]); err != nil {
					t.Errorf("RemoveRule: %v", err)
					return
				}
				live = live[1:]
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []*Rule
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := uint64(i % 64)
				tb.Lookup(v)
				buf = tb.LookupAllAppend(buf[:0], []uint64{v})
				for _, rule := range tb.Rules() {
					_ = rule.Priority // immutable snapshot: safe to walk
				}
			}
		}()
	}
	wg.Wait()
}

// TestRulesSnapshotIsImmutable asserts that the slice returned by
// Rules() is a point-in-time snapshot: later mutation must not change
// what an earlier caller holds.
func TestRulesSnapshotIsImmutable(t *testing.T) {
	tb := NewTable("snap", MatchTernary, 1, 64)
	id, _ := tb.AddRule([]uint64{1}, []uint64{^uint64(0)}, 5, namedAction("a"))
	before := tb.Rules()
	tb.AddRule([]uint64{2}, []uint64{^uint64(0)}, 9, namedAction("b"))
	tb.RemoveRule(id)
	if len(before) != 1 || before[0].ID != id {
		t.Fatalf("snapshot mutated: %v", before)
	}
	after := tb.Rules()
	if len(after) != 1 || after[0].ID == id {
		t.Fatalf("post-mutation snapshot wrong: %v", after)
	}
}

// TestLPMRejectsNonContiguousMask covers the prefix validation of LPM
// tables: a mask with a hole is not a prefix and must be refused.
func TestLPMRejectsNonContiguousMask(t *testing.T) {
	tb := NewTable("lpm", MatchLPM, 1, 16)
	if _, err := tb.AddRule([]uint64{0x0A000000}, []uint64{0xFF00FF00}, 0, namedAction("bad")); err == nil {
		t.Fatal("non-contiguous LPM mask accepted")
	}
	if _, err := tb.AddRule([]uint64{0x0A000000}, []uint64{0xFFFFFF00}, 0, namedAction("ok")); err != nil {
		t.Fatalf("contiguous /24 mask rejected: %v", err)
	}
	if _, err := tb.AddRule([]uint64{0}, []uint64{0}, 0, namedAction("default")); err != nil {
		t.Fatalf("zero mask (default route) rejected: %v", err)
	}
}

// TestExactIndexMatchesTernaryScan cross-checks the exact-match index
// against the ternary fallback: a table holding both fully-masked and
// partially-masked rules must produce the same TCAM order a pure scan
// would.
func TestExactIndexMatchesTernaryScan(t *testing.T) {
	tb := NewTable("mix", MatchTernary, 1, 64)
	exactHi, _ := tb.AddRule([]uint64{7}, []uint64{^uint64(0)}, 10, namedAction("exact-hi"))
	ternMid, _ := tb.AddRule([]uint64{0x07}, []uint64{0x0F}, 5, namedAction("tern-mid"))
	exactLo, _ := tb.AddRule([]uint64{7}, []uint64{^uint64(0)}, 1, namedAction("exact-lo"))

	got := tb.LookupAll(7)
	want := []int{exactHi, ternMid, exactLo}
	if len(got) != len(want) {
		t.Fatalf("LookupAll = %d rules, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("match %d = rule %d, want %d", i, got[i].ID, id)
		}
	}
	if best := tb.Lookup(7); best == nil || best.ID != exactHi {
		t.Errorf("Lookup best = %v, want exact-hi", best)
	}
	// 0x17 masks to 0x07 under the ternary rule but misses both exacts.
	if best := tb.Lookup(0x17); best == nil || best.ID != ternMid {
		t.Errorf("Lookup(0x17) = %v, want ternary rule", best)
	}
}
