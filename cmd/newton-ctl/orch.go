package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/orchestrator"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/scheduler"
	"github.com/newton-net/newton/internal/topology"
)

// runOrch is the `newton-ctl plan` / `newton-ctl apply` entry: build a
// fleet of in-process agents over the chosen topology, compute the
// network-wide plan (placement + per-switch budget admission), and
// either print the typed diff (plan) or drive it through the
// transactional deploy path (apply). -drain demonstrates re-admission:
// after the initial deploy, the named switch is drained, the plan is
// recomputed, and only the delta is applied.
func runOrch(cmd string, args []string) {
	fs := flag.NewFlagSet("newton-ctl "+cmd, flag.ExitOnError)
	var (
		topoSpec = fs.String("topology", "linear:3", "topology: linear:N, fattree:K, or isp")
		queries  = fs.String("queries", "q1,q4", "comma-separated catalog queries (q1..q9), priority = listed order")
		stages   = fs.Int("switch-stages", 8, "pipeline stages of each switch device")
		arrays   = fs.Uint("registers", 1<<14, "state-bank registers per switch")
		rules    = fs.Int("rules", 256, "rule capacity per module table")
		minW     = fs.Uint("min-width", 256, "minimum sketch row width (accuracy floor)")
		maxW     = fs.Uint("max-width", 4096, "maximum sketch row width")
		drain    = fs.String("drain", "", "after the initial apply, drain this switch and apply the delta (apply only)")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	topo, _, _ := buildTopology(*topoSpec)
	fleet, budgets := buildFleet(topo, *stages, uint32(*arrays), *rules)
	remote := controller.NewRemote(fleet.clients, 1)
	orch, err := orchestrator.New(orchestrator.Config{Topo: topo, Budgets: budgets}, remote)
	if err != nil {
		log.Fatal(err)
	}

	var intents []orchestrator.Intent
	names := strings.Split(*queries, ",")
	for i, name := range names {
		q, err := query.ByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		intents = append(intents, orchestrator.Intent{
			Query: q, Priority: len(names) - i,
			MinWidth: uint32(*minW), MaxWidth: uint32(*maxW),
		})
	}
	orch.SetIntents(intents)

	plan, diff, err := orch.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan (%d switches, %d stages/partition):\n%s\ndiff:\n%s",
		len(budgets), plan.StagesPer, orchestrator.Summary(plan), diff)

	if cmd == "plan" {
		return
	}

	if err := orch.Apply(plan, diff); err != nil {
		log.Fatalf("apply: %v", err)
	}
	fmt.Println("\napplied:")
	fleet.printInstalls()

	if *drain != "" {
		fmt.Printf("\ndraining %s and re-planning:\n", *drain)
		orch.Drain(*drain)
		plan2, diff2, err := orch.Plan()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("diff:\n%s", diff2)
		if err := orch.Apply(plan2, diff2); err != nil {
			log.Fatalf("delta apply: %v", err)
		}
		fmt.Println("\napplied delta:")
		fleet.printInstalls()
	}
}

// orchFleet is a set of in-process switch agents over net.Pipe — the
// same wiring a real deployment has, minus the network.
type orchFleet struct {
	names   []string
	clients map[string]*rpc.Client
	agents  map[string]*rpc.Agent
	engines map[string]*modules.Engine
}

// buildFleet starts one agent per topology switch with identical
// budgets.
func buildFleet(topo *topology.Topology, stages int, arraySize uint32, rules int) (*orchFleet, map[string]scheduler.Budget) {
	f := &orchFleet{
		clients: map[string]*rpc.Client{},
		agents:  map[string]*rpc.Agent{},
		engines: map[string]*modules.Engine{},
	}
	budgets := map[string]scheduler.Budget{}
	for _, id := range topo.Switches() {
		name := topo.Node(id).Name
		layout, err := modules.NewLayout(modules.LayoutCompact, stages, arraySize)
		if err != nil {
			log.Fatal(err)
		}
		eng := modules.NewEngine(layout)
		sw := dataplane.NewSwitch(name, stages, modules.StageCapacity())
		sw.Monitor = eng
		agent := rpc.NewAgent(sw, eng)
		server, client := net.Pipe()
		go agent.HandleConn(server)
		f.names = append(f.names, name)
		f.clients[name] = rpc.NewClient(client)
		f.agents[name] = agent
		f.engines[name] = eng
		budgets[name] = scheduler.Budget{Stages: stages, ArraySize: arraySize, RulesPerModule: rules}
	}
	return f, budgets
}

// printInstalls lists what each switch actually holds — the ground
// truth the plan is checked against.
func (f *orchFleet) printInstalls() {
	for _, name := range f.names {
		eng := f.engines[name]
		if eng.InstalledCount() == 0 {
			continue
		}
		fmt.Printf("  %-14s", name)
		for _, p := range eng.Programs() {
			fmt.Printf(" %s", p.Name)
		}
		fmt.Println()
	}
}
