package controller

import (
	"sync"
	"sync/atomic"

	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/obs"
)

// ctlObs is the controller's observability state, shared by the remote
// (RPC) and in-process controllers: control-plane operation outcome
// counters plus per-query resource gauge publication. The zero value
// counts silently; RegisterObs makes it visible.
type ctlObs struct {
	deploys            uint64
	deployFailures     uint64
	rollbacks          uint64
	rollbackFailures   uint64
	removes            uint64
	removeFailures     uint64
	updates            uint64
	resizes            uint64
	resizeFailures     uint64
	reconverges        uint64
	reconvergeFailures uint64
	ticks              uint64
	tickFailures       uint64
	deferredRemoves    uint64
	flushedRemoves     uint64

	mu        sync.Mutex
	reg       *obs.Registry
	published map[int]pubInfo // qid -> labels used at publish time
}

// pubInfo remembers how a query's gauges were labeled, so Remove can
// drop exactly those series.
type pubInfo struct{ name, mode string }

// registerCtl exposes the outcome counters in reg and enables per-query
// gauge publication. Families follow newton_ctl_<op>s_total{result}.
func (o *ctlObs) registerCtl(reg *obs.Registry) {
	o.mu.Lock()
	o.reg = reg
	o.mu.Unlock()
	load := func(p *uint64) func() uint64 {
		return func() uint64 { return atomic.LoadUint64(p) }
	}
	ok, errL := obs.L("result", "ok"), obs.L("result", "error")
	reg.CounterFunc("newton_ctl_deploys_total",
		"Query deploys by outcome.", load(&o.deploys), ok)
	reg.CounterFunc("newton_ctl_deploys_total",
		"Query deploys by outcome.", load(&o.deployFailures), errL)
	reg.CounterFunc("newton_ctl_rollbacks_total",
		"Per-switch rollback removes during failed deploys, by outcome.",
		load(&o.rollbacks), ok)
	reg.CounterFunc("newton_ctl_rollbacks_total",
		"Per-switch rollback removes during failed deploys, by outcome.",
		load(&o.rollbackFailures), errL)
	reg.CounterFunc("newton_ctl_removes_total",
		"Query removals by outcome.", load(&o.removes), ok)
	reg.CounterFunc("newton_ctl_removes_total",
		"Query removals by outcome.", load(&o.removeFailures), errL)
	reg.CounterFunc("newton_ctl_placement_updates_total",
		"Placement delta applies (UpdatePlacement calls that committed).",
		load(&o.updates))
	reg.CounterFunc("newton_ctl_resizes_total",
		"Width resizes by outcome.", load(&o.resizes), ok)
	reg.CounterFunc("newton_ctl_resizes_total",
		"Width resizes by outcome.", load(&o.resizeFailures), errL)
	reg.CounterFunc("newton_ctl_reconverges_total",
		"Reconverge passes by outcome.", load(&o.reconverges), ok)
	reg.CounterFunc("newton_ctl_reconverges_total",
		"Reconverge passes by outcome.", load(&o.reconvergeFailures), errL)
	reg.CounterFunc("newton_ctl_ticks_total",
		"Epoch ticks by outcome.", load(&o.ticks), ok)
	reg.CounterFunc("newton_ctl_ticks_total",
		"Epoch ticks by outcome.", load(&o.tickFailures), errL)
	reg.CounterFunc("newton_ctl_deferred_removes_total",
		"Removes deferred because the target switch was offline.",
		load(&o.deferredRemoves))
	reg.CounterFunc("newton_ctl_flushed_removes_total",
		"Deferred removes flushed when their switch came back online.",
		load(&o.flushedRemoves))
}

func inc(p *uint64) { atomic.AddUint64(p, 1) }

// publish sets the per-query resource gauges for a successfully
// deployed query, labeled {mode, qid, query}. No-op until registerCtl.
func (o *ctlObs) publish(qid int, name, mode string, f modules.Footprint) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.reg == nil {
		return
	}
	if o.published == nil {
		o.published = map[int]pubInfo{}
	}
	o.published[qid] = pubInfo{name: name, mode: mode}
	modules.PublishQueryFootprint(o.reg, qid, name, f, obs.L("mode", mode))
}

// unpublish drops a removed query's gauges. No-op when never published.
func (o *ctlObs) unpublish(qid int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.reg == nil {
		return
	}
	info, ok := o.published[qid]
	if !ok {
		return
	}
	delete(o.published, qid)
	modules.RemoveQueryFootprint(o.reg, qid, info.name, obs.L("mode", info.mode))
}

// RegisterObs exposes the remote controller's deploy/rollback/
// reconverge outcome counters in reg and turns on per-query resource
// gauge publication for subsequent deploys.
func (r *Remote) RegisterObs(reg *obs.Registry) { r.obs.registerCtl(reg) }

// RegisterObs exposes the in-process controller's operation outcome
// counters in reg and turns on per-query resource gauge publication for
// subsequent installs — what newton-ctl serves behind -obs-addr.
func (c *Newton) RegisterObs(reg *obs.Registry) { c.obs.registerCtl(reg) }
