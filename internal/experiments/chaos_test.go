package experiments

import (
	"os"
	"strconv"
	"testing"
)

// faultSeed lets CI sweep the chaos run over a matrix of seeds
// (NEWTON_FAULT_SEED); unset, the default seed keeps the test
// deterministic.
func faultSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("NEWTON_FAULT_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("NEWTON_FAULT_SEED=%q: %v", v, err)
	}
	return seed
}

// TestChaosRecovery kills and restarts an agent mid-experiment under
// seeded injected connection resets: the controller reconverges the
// sharded deployment, the drain cursor keeps report delivery
// exactly-once (never above baseline), and the run recovers most of the
// fault-free report count.
func TestChaosRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is seconds-long")
	}
	res := ChaosRecovery(ChaosConfig{Seed: faultSeed(t)})
	t.Logf("\n%s", res)

	if res.Baseline == 0 {
		t.Fatal("fault-free baseline produced no reports")
	}
	if !res.ReinstalledOK {
		t.Error("restarted agent did not reconverge to the deployment")
	}
	// The restarted shard can fall short by its lost in-window state, or
	// overshoot slightly when its zeroed sketch re-detects a key that
	// already crossed threshold before the restart. Either way the count
	// must stay within half the baseline — a wholesale duplication (a
	// broken drain cursor redelivering batches) or a dead shard would
	// blow through the band.
	lo, hi := res.Baseline-res.Baseline/2, res.Baseline+res.Baseline/2
	if res.WithFaults < lo || res.WithFaults > hi {
		t.Errorf("faulty run delivered %d reports, outside tolerance [%d, %d] around baseline %d",
			res.WithFaults, lo, hi, res.Baseline)
	}
	if res.Resets == 0 {
		t.Skip("seed produced no resets; recovery not exercised")
	}
}
