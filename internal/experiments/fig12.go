package experiments

import (
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/baselines"
	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// Fig12Row is one (trace, system) overhead measurement.
type Fig12Row struct {
	Trace    string
	System   baselines.System
	Messages int
	Packets  int
	Overhead float64
}

// Fig12Result reproduces Fig. 12: monitoring overhead (messages per raw
// packet) of Newton and five countermeasures on the two trace profiles.
// Newton's row is measured from the simulated data plane with all nine
// queries installed; Sonata's accurate exportation comes from the exact
// reference engine; the rest follow their published export disciplines.
type Fig12Result struct {
	Rows []Fig12Row
}

// evalTrace builds the standard evaluation workload on a profile:
// realistic background plus every attack the nine queries target.
func evalTrace(profile trace.Profile, seed int64, flows int, dur time.Duration) *trace.Trace {
	return trace.Generate(trace.Config{Seed: seed, Profile: profile, Flows: flows, Duration: dur},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 600},
		trace.UDPFlood{Victim: 0x0A0000AB, Sources: 150},
		trace.PortScan{Scanner: 0x0B000001, Victim: 0x0A0000AC, Ports: 200},
		trace.SSHBrute{Victim: 0x0A0000AD, Attempts: 100},
		trace.Slowloris{Victim: 0x0A0000AE, Conns: 150},
		trace.DNSNoTCP{Hosts: 5, Queries: 30},
		trace.SuperSpreader{Source: 0x0B000002, Fanout: 200},
	)
}

// Fig12Overhead measures all six systems on both trace profiles.
func Fig12Overhead(flows int, dur time.Duration) *Fig12Result {
	if flows == 0 {
		flows = 3000
	}
	if dur == 0 {
		dur = 500 * time.Millisecond
	}
	res := &Fig12Result{}
	window := uint64(100 * time.Millisecond)

	for _, profile := range []trace.Profile{trace.CAIDA, trace.MAWI} {
		tr := evalTrace(profile, 1234, flows, dur)
		n := len(tr.Packets)

		// Newton: all nine queries on one simulated switch.
		newtonMsgs := measureNewtonReports(tr, window)

		sonata := 0
		for _, q := range query.All() {
			sonata += baselines.SonataMessages(q, tr.Packets)
		}

		add := func(sys baselines.System, msgs int) {
			res.Rows = append(res.Rows, Fig12Row{
				Trace: profile.String(), System: sys,
				Messages: msgs, Packets: n,
				Overhead: baselines.Overhead(msgs, n),
			})
		}
		add(baselines.Newton, newtonMsgs)
		add(baselines.Sonata, sonata)
		add(baselines.TurboFlow, baselines.TurboFlowMessages(tr.Packets, window))
		add(baselines.StarFlow, baselines.StarFlowMessages(tr.Packets, window))
		add(baselines.FlowRadar, baselines.FlowRadarMessages(tr.Packets, window))
		add(baselines.Scream, baselines.ScreamMessages(tr.Packets, window))
	}
	return res
}

// measureNewtonReports installs the nine queries on one switch and
// counts the reports the data plane mirrors for the trace.
func measureNewtonReports(tr *trace.Trace, window uint64) int {
	topo, h1, h2 := topology.Linear(1)
	net, err := netsim.New(topo, netsim.Config{Stages: 16, ArraySize: 1 << 16})
	if err != nil {
		panic(err)
	}
	sw := net.Node(topo.Switches()[0])
	for i, q := range query.All() {
		o := compiler.AllOpts()
		o.QID = i + 1
		o.Width = 1 << 12
		p, err := compiler.Compile(q, o)
		if err != nil {
			panic(err)
		}
		if err := sw.Eng.Install(p); err != nil {
			panic(err)
		}
	}
	net.DeliverBatch(tr.Packets, h1, h2)
	col := analyzer.NewCollector(window, query.Q1(1).ReportKeys())
	col.AddAll(net.DrainReports())
	return col.Raw
}

// String renders the overhead comparison.
func (r *Fig12Result) String() string {
	t := &table{header: []string{"Trace", "System", "Messages", "Packets", "Msgs/packet"}}
	for _, row := range r.Rows {
		t.add(row.Trace, row.System.String(), i2s(row.Messages), i2s(row.Packets), sci(row.Overhead))
	}
	return "Fig. 12: monitoring overheads (paper: Newton/Sonata ~2 orders below the rest)\n" + t.String()
}
