module github.com/newton-net/newton

go 1.22
