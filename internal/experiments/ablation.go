package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/sketch"
)

// AblationResult quantifies two design choices DESIGN.md calls out
// beyond the paper's own figures:
//
//  1. Sketch geometry — why the evaluation's 2-row Count-Min (and 3-hash
//     Bloom) defaults are sensible: overestimation error versus rows at
//     a fixed register budget (rows trade width for independence).
//  2. Layout state capacity — what the compact layout buys beyond stage
//     packing: state banks in every stage instead of every fourth one,
//     i.e. 8x the registers available to stateful queries on the same
//     12-stage device.
type AblationResult struct {
	// RowsMeanError[i] and RowsP99Error[i] are the mean and 99th-
	// percentile Count-Min overestimates with i+1 rows, total register
	// budget held constant.
	RowsMeanError []float64
	RowsP99Error  []float64
	// BloomFPR[i] is the Bloom false-positive rate with i+1 hashes at a
	// fixed bit budget.
	BloomFPR []float64

	// NaiveBanks/CompactBanks are the state banks a 12-stage device
	// offers under each layout; the register ratio follows directly.
	NaiveBanks, CompactBanks int
	RegisterRatio            float64
}

// Ablation runs both studies.
func Ablation() *AblationResult {
	res := &AblationResult{}

	// Count-Min: 4096 registers total, split across 1..4 rows. The
	// workload is heavy-tailed — a handful of elephant keys among many
	// mice — because that is where row count matters: a mouse colliding
	// with an elephant in every row is exponentially unlikely as rows
	// grow, so 2–3 rows crush the tail error; beyond that the narrower
	// rows (budget/rows) start to dominate and error climbs back. The
	// evaluation's 2-row default sits at the knee.
	const budget = 4096
	rng := rand.New(rand.NewSource(99))
	keys := make([]uint64, 3000)
	counts := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = rng.Uint64()
		if i < 50 {
			counts[i] = 500 // elephants
		} else {
			counts[i] = uint64(rng.Intn(5) + 1)
		}
	}
	kb := func(k uint64) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], k)
		return b[:]
	}
	for rows := 1; rows <= 4; rows++ {
		cm := sketch.NewCountMin(rows, uint32(budget/rows), sketch.CRC32IEEE)
		for i, k := range keys {
			cm.Add(kb(k), counts[i])
		}
		errs := make([]float64, len(keys))
		var errSum float64
		for i, k := range keys {
			errs[i] = float64(cm.Estimate(kb(k)) - counts[i])
			errSum += errs[i]
		}
		sort.Float64s(errs)
		res.RowsMeanError = append(res.RowsMeanError, errSum/float64(len(keys)))
		res.RowsP99Error = append(res.RowsP99Error, errs[len(errs)*99/100])
	}

	// Bloom: 1<<14 bits, 1..4 hashes, 2000 inserted keys, FPR from the
	// closed form (validated against sampling in the sketch tests).
	for k := 1; k <= 4; k++ {
		b := sketch.NewBloom(1<<14, k, sketch.CRC32IEEE)
		res.BloomFPR = append(res.BloomFPR, b.FalsePositiveRate(2000))
	}

	// Layout capacity on the evaluation's 12-stage device.
	count := func(kind modules.LayoutKind) int {
		l, err := modules.NewLayout(kind, dataplane.TofinoStages, 1024)
		if err != nil {
			panic(err)
		}
		n := 0
		for st := 1; st <= l.Stages(); st++ {
			for u := 0; u < kind.SuitesPerStage(); u++ {
				if l.ArrayAt(st, u) != nil {
					n++
				}
			}
		}
		return n
	}
	res.NaiveBanks = count(modules.LayoutNaive)
	res.CompactBanks = count(modules.LayoutCompact)
	res.RegisterRatio = float64(res.CompactBanks) / float64(res.NaiveBanks)
	return res
}

// String renders both studies.
func (r *AblationResult) String() string {
	t1 := &table{header: []string{"CM rows (4096 regs total)", "Mean overestimate", "P99 overestimate"}}
	for i, e := range r.RowsMeanError {
		t1.add(i2s(i+1), f2(e), f2(r.RowsP99Error[i]))
	}
	t2 := &table{header: []string{"Bloom hashes (16Kb)", "FPR @ 2000 keys"}}
	for i, f := range r.BloomFPR {
		t2.add(i2s(i+1), sci(f))
	}
	return fmt.Sprintf(
		"Ablation: sketch geometry and layout capacity\n%s\n%s\n"+
			"state banks on a 12-stage device: naive %d, compact %d (%.0fx register capacity)\n",
		t1.String(), t2.String(), r.NaiveBanks, r.CompactBanks, r.RegisterRatio)
}
