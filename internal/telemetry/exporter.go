package telemetry

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
)

// ExporterConfig parameterizes a switch-side exporter.
type ExporterConfig struct {
	// SwitchID names the switch in hello frames and report provenance.
	SwitchID string
	// RingSize bounds the export queue in reports (default 4096).
	RingSize int
	// BatchSize caps reports per frame (default 256). Batching amortizes
	// the per-frame encode and syscall over many reports.
	BatchSize int
	// Policy picks the overflow behavior when the ring fills.
	Policy Policy

	// Redial, when set, enables auto-reconnect: after a stream error the
	// exporter keeps monitoring (reports are dropped and counted, never
	// blocked on), while a background loop redials with backoff. On
	// success it replays the hello and the latest epoch snapshot so the
	// analyzer resumes with current state. Dial sets this automatically.
	Redial func() (net.Conn, error)
	// ReconnectMin/Max bound the redial backoff (defaults 50ms / 2s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
}

func (c ExporterConfig) withDefaults() ExporterConfig {
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 50 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 2 * time.Second
	}
	return c
}

// Exporter is the switch-side half of the telemetry plane: it accepts
// mirrored reports from the packet path, buffers them in a bounded
// ring, and pushes batched frames over a dedicated stream. A background
// writer goroutine owns the stream; the packet path only ever touches
// the ring, so a slow analyzer translates into ring pressure (block or
// drop-oldest, per policy), never into unbounded memory.
type Exporter struct {
	cfg  ExporterConfig
	conn net.Conn
	ring *ring

	writeMu sync.Mutex // serializes frames on the stream; guards conn swap

	mu           sync.Mutex
	idle         *sync.Cond
	enqueued     uint64 // reports offered to Export
	exported     uint64 // reports written to the stream
	lost         uint64 // reports lost to stream errors or late Export calls
	batches      uint64
	snapshots    uint64
	reconnects   uint64
	writeErr     error
	closed       bool
	writerEnd    bool
	reconnecting bool

	// Latest epoch snapshot, cached for replay after a reconnect: the
	// analyzer's merge resumes from the switch's current state instead of
	// waiting a full window for the next roll.
	lastSnapEpoch uint32
	lastSnapBanks []modules.BankSnapshot
	hasSnap       bool

	// agent, when attached, serves this exporter's counters and epoch
	// hooks on the control channel; kept so Close (and construction
	// failures) can detach rather than leave the agent calling into a
	// dead exporter.
	agent *rpc.Agent

	closeCh chan struct{} // interrupts reconnect backoff
	wg      sync.WaitGroup
}

// NewExporter starts an exporter over an established connection (TCP to
// the analyzer, or one end of net.Pipe in tests). It sends the hello
// frame synchronously and launches the stream writer.
func NewExporter(conn net.Conn, cfg ExporterConfig) (*Exporter, error) {
	cfg = cfg.withDefaults()
	e := &Exporter{
		cfg:     cfg,
		conn:    conn,
		ring:    newRing(cfg.RingSize, cfg.Policy),
		closeCh: make(chan struct{}),
	}
	e.idle = sync.NewCond(&e.mu)
	if err := rpc.WriteFrame(conn, &Frame{Type: FrameHello, SwitchID: cfg.SwitchID}); err != nil {
		return nil, fmt.Errorf("telemetry: hello: %w", err)
	}
	e.wg.Add(1)
	go e.writer()
	return e, nil
}

// Dial connects to an analyzer service and starts an exporter on the
// stream. The exporter auto-reconnects to addr after stream errors
// (cfg.Redial is filled in when unset).
func Dial(addr string, cfg ExporterConfig) (*Exporter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: dialing analyzer: %w", err)
	}
	if cfg.Redial == nil {
		cfg.Redial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	e, err := NewExporter(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return e, nil
}

// DialAttached dials an analyzer and wires the exporter into a control
// agent in one step; on any failure the agent's telemetry hooks are
// detached so it never calls into a half-built exporter.
func DialAttached(addr string, cfg ExporterConfig, a *rpc.Agent, eng *modules.Engine) (*Exporter, error) {
	e, err := Dial(addr, cfg)
	if err != nil {
		a.SetTelemetryHooks(nil, nil)
		return nil, err
	}
	e.AttachAgent(a, eng)
	return e, nil
}

// Export offers mirrored reports to the stream. Under PolicyBlock it
// blocks while the ring is full (lossless backpressure); under
// PolicyDropOldest it always returns promptly, evicting the stalest
// queued reports and counting every loss.
func (e *Exporter) Export(rs []dataplane.Report) {
	if len(rs) == 0 {
		return
	}
	accepted := e.ring.put(rs)
	e.mu.Lock()
	e.enqueued += uint64(len(rs))
	e.lost += uint64(len(rs) - accepted)
	e.idle.Broadcast()
	e.mu.Unlock()
}

// writer drains the ring and pushes report frames until the ring closes
// and empties. After a stream error it keeps draining — counting the
// undeliverable reports as lost — so block-policy producers never
// deadlock on a dead analyzer; if a redialer is configured the drops
// stop once the background reconnect restores the stream.
func (e *Exporter) writer() {
	defer e.wg.Done()
	buf := make([]dataplane.Report, 0, e.cfg.BatchSize)
	for {
		batch := e.ring.drainUpTo(e.cfg.BatchSize, buf)
		if batch == nil {
			break
		}
		var err error
		e.mu.Lock()
		dead := e.writeErr != nil
		e.mu.Unlock()
		if !dead {
			err = e.writeFrame(&Frame{Type: FrameReports, SwitchID: e.cfg.SwitchID, Reports: batch})
		}
		e.mu.Lock()
		switch {
		case dead || err != nil:
			e.noteWriteErrLocked(err)
			e.lost += uint64(len(batch))
		default:
			e.exported += uint64(len(batch))
			e.batches++
		}
		e.idle.Broadcast()
		e.mu.Unlock()
	}
	e.mu.Lock()
	e.writerEnd = true
	e.idle.Broadcast()
	e.mu.Unlock()
}

func (e *Exporter) writeFrame(f *Frame) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return rpc.WriteFrame(e.conn, f)
}

// noteWriteErrLocked records a stream error (first one wins) and, when
// a redialer is configured, starts the background reconnect if one is
// not already running. Callers hold e.mu.
func (e *Exporter) noteWriteErrLocked(err error) {
	if err != nil && e.writeErr == nil {
		e.writeErr = err
	}
	if e.cfg.Redial == nil || e.reconnecting || e.closed {
		return
	}
	e.reconnecting = true
	e.wg.Add(1)
	go e.reconnectLoop()
}

// reconnectLoop redials the analyzer with capped exponential backoff.
// On success it sends a fresh hello, replays the latest cached epoch
// snapshot (so the analyzer's merge resumes from current state instead
// of waiting a full window), swaps the stream, and clears the error so
// the writer resumes exporting.
func (e *Exporter) reconnectLoop() {
	defer e.wg.Done()
	backoff := e.cfg.ReconnectMin
	for {
		select {
		case <-e.closeCh:
			e.mu.Lock()
			e.reconnecting = false
			e.mu.Unlock()
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > e.cfg.ReconnectMax {
			backoff = e.cfg.ReconnectMax
		}
		conn, err := e.cfg.Redial()
		if err != nil {
			continue
		}
		e.mu.Lock()
		epoch, banks, replay := e.lastSnapEpoch, e.lastSnapBanks, e.hasSnap
		e.mu.Unlock()
		if err := rpc.WriteFrame(conn, &Frame{Type: FrameHello, SwitchID: e.cfg.SwitchID}); err != nil {
			conn.Close()
			continue
		}
		if replay {
			if err := rpc.WriteFrame(conn, &Frame{
				Type: FrameSnapshot, SwitchID: e.cfg.SwitchID, Epoch: epoch, Snapshots: banks,
			}); err != nil {
				conn.Close()
				continue
			}
		}
		e.writeMu.Lock()
		old := e.conn
		e.conn = conn
		e.writeMu.Unlock()
		old.Close()
		e.mu.Lock()
		e.writeErr = nil
		e.reconnecting = false
		e.reconnects++
		if replay {
			e.snapshots++
		}
		e.idle.Broadcast()
		e.mu.Unlock()
		return
	}
}

// ExportSnapshot pushes an epoch-boundary state-bank snapshot frame.
// Snapshots bypass the report ring: they are epoch-rate (one frame per
// window), must not be dropped (the analyzer's merge is only correct
// over complete epochs), and are written synchronously so the caller's
// epoch roll orders after the capture.
func (e *Exporter) ExportSnapshot(epoch uint32, banks []modules.BankSnapshot) error {
	// Cache first: if this write fails (or the stream is already down),
	// the reconnect replays the freshest state the switch had.
	e.mu.Lock()
	e.lastSnapEpoch, e.lastSnapBanks, e.hasSnap = epoch, banks, true
	degraded := e.writeErr
	e.mu.Unlock()
	if degraded != nil {
		return fmt.Errorf("telemetry: snapshot while stream down: %w", degraded)
	}
	if err := e.writeFrame(&Frame{
		Type: FrameSnapshot, SwitchID: e.cfg.SwitchID, Epoch: epoch, Snapshots: banks,
	}); err != nil {
		e.mu.Lock()
		e.noteWriteErrLocked(err)
		e.mu.Unlock()
		return fmt.Errorf("telemetry: snapshot: %w", err)
	}
	e.mu.Lock()
	e.snapshots++
	e.mu.Unlock()
	return nil
}

// ExportEpoch snapshots every installed query's state banks on eng and
// pushes them tagged with the current (ending) epoch. Call immediately
// before rolling the epoch — rolled banks read as zero.
func (e *Exporter) ExportEpoch(eng *modules.Engine) error {
	banks := eng.SnapshotBanks()
	if len(banks) == 0 {
		return nil
	}
	return e.ExportSnapshot(eng.Layout().Epoch(), banks)
}

// AttachAgent wires the exporter into a control-channel agent: epoch
// ticks from the controller snapshot-and-push the ending window's banks
// before rolling, and the agent serves the exporter's counters on the
// control channel's export_stats request. Close detaches the hooks.
func (e *Exporter) AttachAgent(a *rpc.Agent, eng *modules.Engine) {
	e.mu.Lock()
	e.agent = a
	e.mu.Unlock()
	a.SetTelemetryHooks(func() { _ = e.ExportEpoch(eng) }, e.Stats)
}

// Detach removes this exporter's hooks from the attached agent (if
// any), so epoch ticks no longer call into it.
func (e *Exporter) Detach() {
	e.mu.Lock()
	a := e.agent
	e.agent = nil
	e.mu.Unlock()
	if a != nil {
		a.SetTelemetryHooks(nil, nil)
	}
}

// Flush blocks until everything offered to Export so far has been
// written to the stream or accounted as lost/dropped.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		dropped, _ := e.ring.stats()
		if e.exported+e.lost+dropped >= e.enqueued || e.writerEnd {
			return e.writeErr
		}
		e.idle.Wait()
	}
}

// Stats returns the exporter's counter snapshot. Dropped aggregates
// ring evictions and stream-error losses; a zero Dropped under
// PolicyBlock certifies lossless export.
func (e *Exporter) Stats() rpc.ExportStats {
	dropped, overflows := e.ring.stats()
	e.mu.Lock()
	defer e.mu.Unlock()
	return rpc.ExportStats{
		Enqueued:   e.enqueued,
		Exported:   e.exported,
		Dropped:    dropped + e.lost,
		Overflows:  overflows,
		Batches:    e.batches,
		Snapshots:  e.snapshots,
		Reconnects: e.reconnects,
	}
}

// Err returns the first stream error, if any.
func (e *Exporter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeErr
}

// Close detaches any agent hooks, drains the ring (flushing every
// queued report), sends a bye frame with final counters, and closes the
// stream. Under PolicyBlock nothing offered before Close is lost unless
// the stream itself died.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.Detach()
	close(e.closeCh) // stop any in-flight reconnect backoff

	e.ring.close()
	e.wg.Wait() // writer drains all pending reports; reconnector exits

	st := e.Stats()
	_ = e.writeFrame(&Frame{Type: FrameBye, SwitchID: e.cfg.SwitchID, Stats: &st})
	e.writeMu.Lock()
	err := e.conn.Close()
	e.writeMu.Unlock()
	e.mu.Lock()
	werr := e.writeErr
	e.mu.Unlock()
	if werr != nil {
		return werr
	}
	return err
}
