package modules

import (
	"strconv"
	"sync"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/obs"
)

// queryGaugeFamilies is the per-query resource accounting surface — the
// paper's §6 per-query cost tables as live series, one per installed
// query, labeled {switch, qid, query}. Series appear on install and
// disappear on remove (event-driven via the engine's onChange hook, so
// scrapes never race rule updates).
var queryGaugeFamilies = []struct {
	name, help string
	get        func(Footprint) int64
}{
	{"newton_query_stages", "Pipeline stages spanned by the installed query.",
		func(f Footprint) int64 { return int64(f.Stages) }},
	{"newton_query_registers", "State-bank register slots allocated to the query.",
		func(f Footprint) int64 { return int64(f.Registers) }},
	{"newton_query_hash_units", "Hash-calculation module instances used by the query.",
		func(f Footprint) int64 { return int64(f.HashUnits) }},
	{"newton_query_salus", "State-owning stateful-ALU instances used by the query.",
		func(f Footprint) int64 { return int64(f.SALUs) }},
	{"newton_query_init_rules", "newton_init classifier entries installed for the query.",
		func(f Footprint) int64 { return int64(f.InitRules) }},
	{"newton_query_result_rules", "Result-process (R-table) entries installed for the query.",
		func(f Footprint) int64 { return int64(f.ResultRules) }},
	{"newton_query_rules", "Total module-table rules installed for the query.",
		func(f Footprint) int64 { return int64(f.Rules) }},
	{"newton_query_classifier_preds", "Distinct newton_init classifier predicates contributed by the query.",
		func(f Footprint) int64 { return int64(f.ClassifierPreds) }},
}

// PublishFootprints (re)publishes per-query resource gauges for the
// given programs into reg, summing across partitions of the same query,
// and removes series for queries in prev that are now gone. It returns
// the currently published qid -> query-name map for the next call.
// extra labels (e.g. switch or mode) prefix the {qid, query} pair.
func PublishFootprints(reg *obs.Registry, progs []*Program, prev map[int]string, extra ...obs.Label) map[int]string {
	type agg struct {
		name string
		f    Footprint
	}
	byQID := map[int]*agg{}
	for _, p := range progs {
		fp := p.Footprint()
		a := byQID[p.QID]
		if a == nil {
			a = &agg{name: p.Name}
			byQID[p.QID] = a
		}
		a.f.Stages += fp.Stages
		a.f.HashUnits += fp.HashUnits
		a.f.SALUs += fp.SALUs
		a.f.Registers += fp.Registers
		a.f.InitRules += fp.InitRules
		a.f.ResultRules += fp.ResultRules
		a.f.Rules += fp.Rules
		a.f.ClassifierPreds += fp.ClassifierPreds
	}
	for qid, name := range prev {
		if _, still := byQID[qid]; still {
			continue
		}
		RemoveQueryFootprint(reg, qid, name, extra...)
	}
	cur := make(map[int]string, len(byQID))
	for qid, a := range byQID {
		cur[qid] = a.name
		PublishQueryFootprint(reg, qid, a.name, a.f, extra...)
	}
	return cur
}

// queryLabels builds the {extra..., qid, query} label set shared by all
// per-query gauge families.
func queryLabels(qid int, name string, extra []obs.Label) []obs.Label {
	ls := make([]obs.Label, 0, len(extra)+2)
	ls = append(ls, extra...)
	return append(ls, obs.L("qid", strconv.Itoa(qid)), obs.L("query", name))
}

// PublishQueryFootprint sets the per-query resource gauges for one
// query from a computed footprint — the controller-side entry point,
// where programs are published one deploy at a time with deploy-scoped
// labels (e.g. mode).
func PublishQueryFootprint(reg *obs.Registry, qid int, name string, f Footprint, extra ...obs.Label) {
	ls := queryLabels(qid, name, extra)
	for _, fam := range queryGaugeFamilies {
		reg.Gauge(fam.name, fam.help, ls...).Set(fam.get(f))
	}
}

// RemoveQueryFootprint drops the per-query gauges published under the
// same labels.
func RemoveQueryFootprint(reg *obs.Registry, qid int, name string, extra ...obs.Label) {
	ls := queryLabels(qid, name, extra)
	for _, fam := range queryGaugeFamilies {
		reg.Remove(fam.name, ls...)
	}
}

// AttachObs wires the engine's execution metrics and per-query resource
// gauges into reg, labeling engine families with switch=switchID.
// Attach before traffic starts: it installs the sampled-latency
// histogram and the install/remove hook without synchronization against
// a running Execute.
func AttachObs(e *Engine, reg *obs.Registry, switchID string) {
	sw := obs.L("switch", switchID)
	reg.CounterFunc("newton_engine_packets_total",
		"Packets executed by the module engine.",
		func() uint64 { p, _, _ := e.Counters(); return p }, sw)
	reg.CounterFunc("newton_engine_dispatch_misses_total",
		"Dispatch-cache misses (full newton_init classifier scans).",
		func() uint64 { _, m, _ := e.Counters(); return m }, sw)
	reg.CounterFunc("newton_engine_ternary_scan_total",
		"Linear ternary-scan fallbacks across the layout's tables; stays flat once rule sets are served by the compiled classifier.",
		func() uint64 { return e.layout.TernaryScans() }, sw)
	for _, tb := range []*dataplane.Table{e.layout.Init, e.layout.Fin} {
		t := tb
		reg.GaugeFunc("newton_table_classifier_compiled",
			"1 when the table's ternary rules are served by the compiled classifier, 0 on linear-scan fallback (or before first classified lookup).",
			func() float64 {
				if t.ClassifierInfo().Compiled {
					return 1
				}
				return 0
			}, sw, obs.L("table", t.Name))
	}
	for k := Kind(0); k < NumKinds; k++ {
		kind := k
		reg.CounterFunc("newton_engine_module_execs_total",
			"Module-op executions by kind (K, H, S, R).",
			func() uint64 { _, _, ex := e.Counters(); return ex[kind] },
			sw, obs.L("module", kind.String()))
	}

	// Per-worker series: each engine lane gets its own sampled-latency
	// histogram and packet/miss counters labeled {switch, worker}. The
	// hook stays on the engine so lanes created by a later SetWorkers
	// pick up their series too.
	e.laneObs = func(lane int) *obs.Histogram {
		w := obs.L("worker", strconv.Itoa(lane))
		reg.CounterFunc("newton_engine_worker_packets_total",
			"Packets executed per engine worker lane.",
			func() uint64 { p, _ := e.LaneCounters(lane); return p }, sw, w)
		reg.CounterFunc("newton_engine_worker_dispatch_misses_total",
			"Dispatch-cache misses per engine worker lane.",
			func() uint64 { _, m := e.LaneCounters(lane); return m }, sw, w)
		h := obs.NewHistogram(obs.ExpBuckets(64, 2, 14)) // 64ns .. ~0.5ms
		reg.RegisterHistogram("newton_engine_exec_ns",
			"Sampled whole-packet engine execution time in ns (1 in 64 packets), per worker lane.",
			h, sw, w)
		return h
	}
	for i, l := range e.lanes {
		l.execNS = e.laneObs(i)
	}

	var mu sync.Mutex
	prev := map[int]string{}
	publish := func() {
		mu.Lock()
		defer mu.Unlock()
		prev = PublishFootprints(reg, e.Programs(), prev, sw)
	}
	e.onChange = publish
	publish()
}
