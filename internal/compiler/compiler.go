// Package compiler translates traffic-monitoring queries into Newton
// module configurations and table rules (§4.3). It implements query
// primitive decomposition (each primitive becomes configurations of the
// K/H/S/R modules), module rule composition per Algorithm 1 with its
// three optimizations, the naïve baseline composition the evaluation
// compares against, and the Sonata compilation model used in Fig. 15.
package compiler

import (
	"fmt"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/sketch"
)

// Options parameterizes compilation.
type Options struct {
	// QID is the data-plane query identifier (12 bits on the SP header).
	QID int

	// Opt1 replaces front filters with newton_init entries; Opt2 removes
	// unused and redundant modules; Opt3 composes vertically over the
	// two metadata sets of the compact layout.
	Opt1, Opt2, Opt3 bool

	// ReduceRows is the Count-Min row count per reduce (evaluation
	// default: 2). DistinctHashes is the Bloom hash count per distinct
	// (default: 3).
	ReduceRows, DistinctHashes int

	// Width is the register count per sketch row.
	Width uint32

	// ShardIndex/ShardCount configure key-sharded cross-switch execution
	// (§5.1): this device owns keys whose owner hash ≡ ShardIndex mod
	// ShardCount. Count 0 or 1 disables sharding.
	ShardIndex, ShardCount uint32
}

func (o Options) withDefaults() Options {
	if o.ReduceRows <= 0 {
		o.ReduceRows = 2
	}
	if o.DistinctHashes <= 0 {
		o.DistinctHashes = 3
	}
	if o.Width == 0 {
		o.Width = 1024
	}
	return o
}

// AllOpts enables every composition optimization.
func AllOpts() Options { return Options{Opt1: true, Opt2: true, Opt3: true} }

// Baseline disables every optimization: full suites, one module per
// stage — the evaluation's baseline composition.
func Baseline() Options { return Options{} }

// rowSeed derives the hash seed of sketch row r. All branches of a query
// share row seeds so cross-branch state reads align on key values.
func rowSeed(r int) uint32 { return 0x9E3779B9 + uint32(r)*0x85EBCA6B }

// filterSeed seeds the equality-filter hash.
const filterSeed = 0xF117F117

// continueAll is the R entry range that matches any realistic value.
const rInf = int64(1) << 62

// unit is an intermediate group of ops produced by decomposing one
// primitive (or one sketch row of a stateful primitive). Units are the
// granularity of metadata-set alternation in vertical composition.
type unit struct {
	ops []*modules.Op

	// gates marks units whose R can stop the packet (filters, the
	// distinct gate): later state writes must be staged after them.
	gates bool
	// isRow0 marks the unit carrying a reduce's first sketch row; its
	// metadata set holds the entity keys reports mirror.
	isRow0 bool
	// tailRead marks merge-tail units reading other branches' banks;
	// they are forced onto the set opposite the report keys.
	tailRead bool
	// reportR marks the unit whose R mirrors reports; it is forced onto
	// the row-0 set so the mirrored keys are the monitored entity.
	reportR bool
}

// Compile translates q into a data-plane program under the given
// options.
func Compile(q *query.Query, o Options) (*modules.Program, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}
	o = o.withDefaults()
	if q.Merge != nil {
		for bi := range q.Branches {
			if len(q.Branches[bi].StatefulKeys().Fields()) != 1 {
				return nil, fmt.Errorf("compiler: merge query %s branch %d needs a single-field stateful key", q.Name, bi)
			}
		}
	}
	p := &modules.Program{QID: o.QID, Name: q.Name}
	// Without Opt.3 the composition is the intuitive one: the whole
	// query — all branches — chains horizontally, one module per stage
	// (Fig. 6's "up to 20 modules and 20 stages"). With Opt.3, branches
	// multiplex rules into the same stages.
	seq := 0
	for bi := range q.Branches {
		bp, units, err := compileBranch(q, bi, o)
		if err != nil {
			return nil, err
		}
		assignSets(units, o)
		if o.Opt2 {
			units = pruneRedundantK(units)
		}
		seq = assignStages(units, o, seq)
		for _, u := range units {
			bp.Ops = append(bp.Ops, u.ops...)
		}
		p.Branches = append(p.Branches, bp)
	}
	return p, nil
}

// compileBranch lowers one branch: Opt.1 front-filter folding, primitive
// decomposition into units, and the merge tail.
func compileBranch(q *query.Query, bi int, o Options) (*modules.BranchProgram, []*unit, error) {
	b := &q.Branches[bi]
	bp := &modules.BranchProgram{Init: modules.MatchAllInit()}

	prims := b.Prims
	if o.Opt1 && len(prims) > 0 && prims[0].IsFrontFilter() {
		bp.Init = initMatchFor(prims[0])
		prims = prims[1:]
	}

	units, err := decompose(q, prims, o)
	if err != nil {
		return nil, nil, fmt.Errorf("compiler: %s branch %d: %w", q.Name, bi, err)
	}
	tail, err := mergeTail(q, bi, o)
	if err != nil {
		return nil, nil, err
	}
	return bp, append(units, tail...), nil
}

// initMatchFor builds the newton_init ternary entry equivalent to a
// front filter.
func initMatchFor(pr query.Primitive) modules.InitMatch {
	var m modules.InitMatch
	col := func(f fields.ID) int {
		switch f {
		case fields.SrcIP:
			return 0
		case fields.DstIP:
			return 1
		case fields.Proto:
			return 2
		case fields.SrcPort:
			return 3
		case fields.DstPort:
			return 4
		case fields.TCPFlags:
			return 5
		}
		return -1
	}
	for _, pred := range pr.Preds {
		c := col(pred.Field)
		if c < 0 {
			continue
		}
		mask := pred.Field.MaxValue()
		if pred.Op == query.CmpMaskEq {
			mask = pred.Mask
		}
		m.Values[c] = pred.Value & mask
		m.Masks[c] = mask
	}
	return m
}

// decompose lowers primitives into units of module ops (configs only;
// sets and stages come later).
func decompose(q *query.Query, prims []query.Primitive, o Options) ([]*unit, error) {
	var units []*unit
	// curKeys tracks the chain's current operation keys (θ in Algorithm
	// 1): unoptimized suites whose K is semantically unused re-select
	// them so downstream modules (and reports) see unchanged keys.
	curKeys := fields.Keep(fields.DstIP)
	kOp := func(m fields.Mask) *modules.Op {
		curKeys = m
		return &modules.Op{Kind: modules.ModK, K: &modules.KConfig{Mask: m}}
	}
	passthroughHSR := func(u *unit) {
		u.ops = append(u.ops,
			&modules.Op{Kind: modules.ModH, H: &modules.HConfig{Algo: sketch.FNV1a, Seed: filterSeed, Direct: modules.NoField}},
			&modules.Op{Kind: modules.ModS, S: &modules.SConfig{PassThrough: true}},
			&modules.Op{Kind: modules.ModR, R: &modules.RConfig{Entries: []modules.REntry{{Lo: -rInf, Hi: rInf}}}})
	}

	for pi, pr := range prims {
		lastPrim := pi == len(prims)-1
		switch pr.Kind {
		case query.KindFilter:
			eqPreds, rangePreds, resPreds := splitPreds(pr.Preds)
			if len(eqPreds) > 0 {
				u := &unit{gates: true}
				mask := predMask(eqPreds)
				u.ops = append(u.ops, kOp(mask))
				expect := expectedHash(eqPreds, mask)
				u.ops = append(u.ops,
					&modules.Op{Kind: modules.ModH, H: &modules.HConfig{Algo: sketch.FNV1a, Seed: filterSeed, Direct: modules.NoField}},
					&modules.Op{Kind: modules.ModS, S: &modules.SConfig{PassThrough: true}},
					&modules.Op{Kind: modules.ModR, R: &modules.RConfig{Entries: []modules.REntry{
						{Lo: int64(expect), Hi: int64(expect)}, // match → continue
					}}})
				units = append(units, u)
			}
			for _, pred := range rangePreds {
				u := &unit{gates: true}
				u.ops = append(u.ops, kOp(fields.Keep(pred.Field)))
				lo, hi := predRange(pred)
				u.ops = append(u.ops,
					&modules.Op{Kind: modules.ModH, H: &modules.HConfig{Direct: pred.Field}},
					&modules.Op{Kind: modules.ModS, S: &modules.SConfig{PassThrough: true}},
					&modules.Op{Kind: modules.ModR, R: &modules.RConfig{Entries: []modules.REntry{{Lo: lo, Hi: hi}}}})
				units = append(units, u)
			}
			for _, pred := range resPreds {
				u := &unit{gates: true}
				if !o.Opt2 {
					// Unoptimized, the suite still carries the unused
					// K/H/S modules Opt.2 would strip; its K re-selects
					// the current keys so reports stay intact.
					u.ops = append(u.ops, kOp(curKeys))
					u.ops = append(u.ops,
						&modules.Op{Kind: modules.ModH, H: &modules.HConfig{Algo: sketch.FNV1a, Seed: filterSeed, Direct: modules.NoField}},
						&modules.Op{Kind: modules.ModS, S: &modules.SConfig{PassThrough: true}})
				}
				entries := resultEntries(q, pred, lastPrim)
				if q.Merge == nil && lastPrim && (pred.Op == query.CmpGt || pred.Op == query.CmpGe) {
					u.reportR = true
				}
				u.ops = append(u.ops, &modules.Op{Kind: modules.ModR, R: &modules.RConfig{OnGlobal: true, Entries: entries}})
				units = append(units, u)
			}

		case query.KindMap:
			u := &unit{}
			u.ops = append(u.ops, kOp(pr.Keys))
			if !o.Opt2 {
				passthroughHSR(u)
			}
			units = append(units, u)

		case query.KindDistinct:
			for r := 0; r < o.DistinctHashes; r++ {
				u := &unit{}
				u.ops = append(u.ops, kOp(pr.Keys))
				u.ops = append(u.ops,
					&modules.Op{Kind: modules.ModH, H: &modules.HConfig{Algo: sketch.CRC32IEEE, Seed: rowSeed(r), Range: o.Width, Direct: modules.NoField}},
					&modules.Op{Kind: modules.ModS, S: &modules.SConfig{
						ALU: dataplane.OpOr, Operand: modules.OperandConst, Const: 1,
						WidthHint: o.Width, OwnerIndex: o.ShardIndex, OwnerCount: o.ShardCount,
					}})
				act := modules.RAct{Kind: modules.RActGlobalAdd, Coeff: 1}
				if r == 0 {
					act = modules.RAct{Kind: modules.RActSetGlobal}
				}
				u.ops = append(u.ops, &modules.Op{Kind: modules.ModR, R: &modules.RConfig{Entries: []modules.REntry{
					{Lo: -rInf, Hi: rInf, Actions: []modules.RAct{act}},
				}}})
				units = append(units, u)
			}
			// Gate: seen before iff every row's old bit was set
			// (global == rows). New → continue, seen → stop.
			gate := &unit{gates: true}
			gate.ops = append(gate.ops, &modules.Op{Kind: modules.ModR, R: &modules.RConfig{
				OnGlobal: true,
				Entries:  []modules.REntry{{Lo: 0, Hi: int64(o.DistinctHashes) - 1}},
			}})
			units = append(units, gate)

		case query.KindReduce:
			operand, constv, fieldv := modules.OperandConst, uint32(1), fields.ID(0)
			if pr.Value != query.ValueOne {
				operand, fieldv = modules.OperandField, pr.Value
			}
			for r := 0; r < o.ReduceRows; r++ {
				u := &unit{isRow0: r == 0}
				u.ops = append(u.ops, kOp(pr.Keys))
				u.ops = append(u.ops,
					&modules.Op{Kind: modules.ModH, H: &modules.HConfig{Algo: sketch.CRC32IEEE, Seed: rowSeed(r), Range: o.Width, Direct: modules.NoField}},
					&modules.Op{Kind: modules.ModS, S: &modules.SConfig{
						ALU: dataplane.OpAdd, Operand: operand, Const: constv, Field: fieldv,
						WidthHint: o.Width, Row0: r == 0,
						OwnerIndex: o.ShardIndex, OwnerCount: o.ShardCount,
					}})
				act := modules.RAct{Kind: modules.RActGlobalMin}
				if r == 0 {
					act = modules.RAct{Kind: modules.RActSetGlobal}
				}
				u.ops = append(u.ops, &modules.Op{Kind: modules.ModR, R: &modules.RConfig{Entries: []modules.REntry{
					{Lo: -rInf, Hi: rInf, Actions: []modules.RAct{act}},
				}}})
				units = append(units, u)
			}
		}
	}
	return units, nil
}

// resultEntries compiles a result predicate into R entries. For the
// final threshold of a single-branch query, the exact crossing value
// (threshold + 1, counts increment by one) gets the report action —
// Newton's accurate "report once per key per window" exportation.
func resultEntries(q *query.Query, pred query.Predicate, lastPrim bool) []modules.REntry {
	lo, hi := predRange(pred)
	if q.Merge == nil && lastPrim && (pred.Op == query.CmpGt || pred.Op == query.CmpGe) {
		return []modules.REntry{
			{Lo: lo, Hi: lo, Actions: []modules.RAct{{Kind: modules.RActReport}}},
			{Lo: lo + 1, Hi: hi}, // already reported this window → continue silently
		}
	}
	return []modules.REntry{{Lo: lo, Hi: hi}}
}

// splitPreds partitions filter predicates into equality-on-packet,
// range-on-packet, and on-result classes.
func splitPreds(preds []query.Predicate) (eq, rng, res []query.Predicate) {
	for _, p := range preds {
		switch {
		case p.OnResult():
			res = append(res, p)
		case p.Op == query.CmpEq || p.Op == query.CmpMaskEq:
			eq = append(eq, p)
		default:
			rng = append(rng, p)
		}
	}
	return
}

// predMask builds the K mask covering equality predicates (using the
// predicate's own bit mask for masked matches).
func predMask(preds []query.Predicate) fields.Mask {
	var m fields.Mask
	for _, p := range preds {
		bits := p.Field.MaxValue()
		if p.Op == query.CmpMaskEq {
			bits = p.Mask
		}
		m = m.WithBits(p.Field, bits)
	}
	return m
}

// expectedHash computes the hash the filter's R entry matches: the hash
// of the expected operation keys, exactly as the engine computes it for
// a satisfying packet.
func expectedHash(preds []query.Predicate, mask fields.Mask) uint32 {
	var v fields.Vector
	for _, p := range preds {
		v.Set(p.Field, p.Value)
	}
	keys := mask.Apply(&v)
	var buf [8 * int(fields.NumFields)]byte
	return sketch.FNV1a.Sum(mask.Bytes(&keys, buf[:0]), filterSeed)
}

// predRange converts a comparison into the [lo, hi] continue-range of an
// R entry.
func predRange(p query.Predicate) (int64, int64) {
	switch p.Op {
	case query.CmpGt:
		return int64(p.Value) + 1, rInf
	case query.CmpGe:
		return int64(p.Value), rInf
	case query.CmpLt:
		return -rInf, int64(p.Value) - 1
	case query.CmpLe:
		return -rInf, int64(p.Value)
	case query.CmpNe:
		// Ne needs two ternary entries; result values are counts, so in
		// practice != v means > v. Documented approximation.
		return int64(p.Value) + 1, rInf
	default: // CmpEq
		return int64(p.Value), int64(p.Value)
	}
}
