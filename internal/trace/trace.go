// Package trace generates the packet workloads the evaluation runs on.
//
// The paper evaluates Newton with CAIDA and MAWI traces, which are not
// redistributable. Per the reproduction's substitution rule, this package
// provides seeded synthetic generators whose flow-size distribution
// (Zipf-skewed, heavy-tailed), protocol mix, and packet-size mix mirror
// the published characteristics of those traces, plus attack overlays
// (SYN flood, port scan, UDP DDoS, SSH brute force, Slowloris, DNS
// no-TCP, superspreaders) that give the nine evaluation queries exact,
// known ground truth. Determinism is total given a seed.
package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/newton-net/newton/internal/packet"
)

// Profile selects the background-traffic mix.
type Profile int

const (
	// CAIDA mimics a backbone trace: TCP-dominant, strong Zipf skew.
	CAIDA Profile = iota
	// MAWI mimics the WIDE transit trace: more UDP/DNS, flatter skew.
	MAWI
)

// String returns the profile name.
func (p Profile) String() string {
	if p == MAWI {
		return "MAWI"
	}
	return "CAIDA"
}

type profileParams struct {
	zipfS       float64 // Zipf skew of packets-per-flow
	zipfMax     uint64  // max packets per flow
	tcpFraction float64 // remainder is UDP
	dnsFraction float64 // of UDP flows, fraction to/from port 53
	meanPktLen  int
}

func (p Profile) params() profileParams {
	switch p {
	case MAWI:
		return profileParams{zipfS: 1.1, zipfMax: 2000, tcpFraction: 0.62, dnsFraction: 0.35, meanPktLen: 700}
	default:
		return profileParams{zipfS: 1.3, zipfMax: 5000, tcpFraction: 0.83, dnsFraction: 0.10, meanPktLen: 900}
	}
}

// Config parameterizes a synthetic trace.
type Config struct {
	Seed     int64
	Profile  Profile
	Flows    int           // number of background flows
	Duration time.Duration // virtual span of the trace
}

// Truth records the attack ground truth injected into a trace, keyed by
// the quantity each evaluation query reports.
type Truth struct {
	SYNFloodVictims  map[uint32]bool // Q6 (and Fig. 6's example)
	UDPFloodVictims  map[uint32]bool // Q5
	ScanVictims      map[uint32]bool // Q4 reports hosts being scanned
	SSHBruteVictims  map[uint32]bool // Q2
	SlowlorisVictims map[uint32]bool // Q8
	DNSOnlyHosts     map[uint32]bool // Q9
	SuperSpreaders   map[uint32]bool // Q3
}

func newTruth() *Truth {
	return &Truth{
		SYNFloodVictims:  map[uint32]bool{},
		UDPFloodVictims:  map[uint32]bool{},
		ScanVictims:      map[uint32]bool{},
		SSHBruteVictims:  map[uint32]bool{},
		SlowlorisVictims: map[uint32]bool{},
		DNSOnlyHosts:     map[uint32]bool{},
		SuperSpreaders:   map[uint32]bool{},
	}
}

// Trace is a timestamp-ordered packet sequence plus its ground truth.
type Trace struct {
	Packets []*packet.Packet
	Truth   *Truth
}

// Overlay injects attack traffic into a trace under construction.
type Overlay interface {
	// apply appends packets (with arbitrary timestamps within the
	// duration) and records ground truth.
	apply(g *generator)
	fmt.Stringer
}

type generator struct {
	rng   *rand.Rand
	cfg   Config
	pkts  []*packet.Packet
	truth *Truth
}

// Generate builds a trace from background traffic plus overlays.
func Generate(cfg Config, overlays ...Overlay) *Trace {
	if cfg.Flows < 0 {
		panic("trace: negative flow count")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	g := &generator{
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		truth: newTruth(),
	}
	g.background()
	for _, ov := range overlays {
		ov.apply(g)
	}
	sort.SliceStable(g.pkts, func(i, j int) bool { return g.pkts[i].TS < g.pkts[j].TS })
	compact(g.pkts)
	return &Trace{Packets: g.pkts, Truth: g.truth}
}

// compact rewrites the sorted trace into contiguous slabs so that
// delivery order equals memory order. Generation allocates each packet
// (and its L4 header) individually, and sorting by timestamp shuffles
// those allocations; without compaction every delivered packet is a
// cold-cache pointer chase, which dominates per-packet cost at
// millions of packets per second.
func compact(pkts []*packet.Packet) {
	var nTCP, nUDP int
	for _, p := range pkts {
		if p.TCP != nil {
			nTCP++
		}
		if p.UDP != nil {
			nUDP++
		}
	}
	slab := make([]packet.Packet, len(pkts))
	tcps := make([]packet.TCP, 0, nTCP)
	udps := make([]packet.UDP, 0, nUDP)
	for i, p := range pkts {
		slab[i] = *p
		if p.TCP != nil {
			tcps = append(tcps, *p.TCP)
			slab[i].TCP = &tcps[len(tcps)-1]
		}
		if p.UDP != nil {
			udps = append(udps, *p.UDP)
			slab[i].UDP = &udps[len(udps)-1]
		}
		pkts[i] = &slab[i]
	}
}

// randIP draws an address from one of a handful of /16s so that traffic
// concentrates the way real traces do.
func (g *generator) randIP() uint32 {
	nets := [...]uint32{0x0A00_0000, 0x0A01_0000, 0xAC10_0000, 0xC0A8_0000, 0x0B00_0000}
	return nets[g.rng.Intn(len(nets))] | uint32(g.rng.Intn(1<<16))
}

func (g *generator) randTS() uint64 {
	return uint64(g.rng.Int63n(int64(g.cfg.Duration)))
}

func (g *generator) pktLen(mean int) int {
	// Bimodal: many small (ACK-ish) packets, some near-MTU.
	if g.rng.Float64() < 0.45 {
		return 40 + g.rng.Intn(80)
	}
	l := mean + g.rng.Intn(1400-mean)
	if l > 1400 {
		l = 1400
	}
	return l
}

func (g *generator) emit(ts uint64, src, dst uint32, proto uint8, sport, dport uint16, flags uint8, payload int) {
	p := &packet.Packet{
		TS: ts,
		IP: packet.IPv4{TTL: 64, Proto: proto, Src: src, Dst: dst},
	}
	switch proto {
	case packet.ProtoTCP:
		p.TCP = &packet.TCP{SrcPort: sport, DstPort: dport, Flags: flags, Seq: g.rng.Uint32(), Window: 65535}
	case packet.ProtoUDP:
		p.UDP = &packet.UDP{SrcPort: sport, DstPort: dport}
	}
	p.PayloadLen = payload
	g.pkts = append(g.pkts, p)
}

// background synthesizes cfg.Flows flows with Zipf packet counts.
func (g *generator) background() {
	pp := g.cfg.Profile.params()
	if g.cfg.Flows == 0 {
		return
	}
	zipf := rand.NewZipf(g.rng, pp.zipfS, 2, pp.zipfMax)
	for f := 0; f < g.cfg.Flows; f++ {
		src, dst := g.randIP(), g.randIP()
		n := int(zipf.Uint64()) + 1
		isTCP := g.rng.Float64() < pp.tcpFraction
		if isTCP {
			sport := uint16(g.rng.Intn(60000) + 1024)
			dport := wellKnownTCP[g.rng.Intn(len(wellKnownTCP))]
			g.tcpFlow(src, dst, sport, dport, n, pp.meanPktLen, true)
		} else {
			sport := uint16(g.rng.Intn(60000) + 1024)
			dport := uint16(g.rng.Intn(60000) + 1024)
			if g.rng.Float64() < pp.dnsFraction {
				dport = 53
			}
			base := g.randTS()
			for i := 0; i < n; i++ {
				g.emit(g.jitter(base, i), src, dst, packet.ProtoUDP, sport, dport, 0, g.pktLen(pp.meanPktLen))
			}
		}
	}
}

var wellKnownTCP = []uint16{80, 443, 443, 443, 8080, 25, 993, 8443}

// jitter spaces a flow's packets out from a base timestamp, wrapping
// around the trace duration so long flows spread uniformly instead of
// piling up at the end.
func (g *generator) jitter(base uint64, i int) uint64 {
	ts := base + uint64(i)*uint64(50+g.rng.Intn(5000))*1000 // 50µs–5ms gaps
	return ts % uint64(g.cfg.Duration)
}

// tcpFlow emits a full TCP conversation: handshake, data, teardown. When
// complete is false the handshake never finishes (no final ACK), which
// matters to Q1/Q6/Q7 semantics.
func (g *generator) tcpFlow(src, dst uint32, sport, dport uint16, n, meanLen int, complete bool) {
	base := g.randTS()
	i := 0
	g.emit(g.jitter(base, i), src, dst, packet.ProtoTCP, sport, dport, packet.FlagSYN, 0)
	i++
	g.emit(g.jitter(base, i), dst, src, packet.ProtoTCP, dport, sport, packet.FlagSYN|packet.FlagACK, 0)
	i++
	if !complete {
		return
	}
	g.emit(g.jitter(base, i), src, dst, packet.ProtoTCP, sport, dport, packet.FlagACK, 0)
	i++
	for d := 0; d < n; d++ {
		payload := meanLen
		if meanLen >= 40 {
			payload = g.pktLen(meanLen)
		}
		g.emit(g.jitter(base, i), src, dst, packet.ProtoTCP, sport, dport, packet.FlagACK|packet.FlagPSH, payload)
		i++
	}
	g.emit(g.jitter(base, i), src, dst, packet.ProtoTCP, sport, dport, packet.FlagFIN|packet.FlagACK, 0)
}
