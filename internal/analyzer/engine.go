// Package analyzer is the software side of Newton: an exact reference
// implementation of the query semantics (the role Spark plays in the
// paper). It serves three purposes: computing ground truth for accuracy
// experiments, executing the deferred tails of queries that outgrow the
// data plane (§5.2's fallback), and collecting/validating the reports
// switches mirror up.
package analyzer

import (
	"fmt"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
)

// Alert is one query trigger: in window w, the monitored key crossed the
// query's threshold with the given merged value.
type Alert struct {
	Window uint64
	Key    uint64 // value of the query's (single-field) report key
	Value  int64  // merged/combined value at trigger time
}

// branchState is one branch's per-window state.
type branchState struct {
	distinct map[string]bool   // per distinct primitive occurrence sets (keyed by prim index + key bytes)
	reduce   map[uint64]uint64 // stateful key value -> folded value
}

func newBranchState() *branchState {
	return &branchState{distinct: map[string]bool{}, reduce: map[uint64]uint64{}}
}

// Engine evaluates one query exactly, with per-window state and
// tumbling-window resets.
type Engine struct {
	q        *query.Query
	window   uint64 // window length in ns
	curWin   uint64
	branches []*branchState
	alerts   []Alert

	// finals accumulates, per window, the exact per-key merged value at
	// window end — the accuracy experiments' ground truth.
	finals map[uint64]map[uint64]int64
}

// NewEngine builds a reference engine for q.
func NewEngine(q *query.Query) *Engine {
	if err := q.Validate(); err != nil {
		panic(fmt.Sprintf("analyzer: invalid query: %v", err))
	}
	e := &Engine{
		q:      q,
		window: uint64(q.Window),
		finals: map[uint64]map[uint64]int64{},
	}
	e.resetWindow()
	return e
}

func (e *Engine) resetWindow() {
	e.branches = make([]*branchState, len(e.q.Branches))
	for i := range e.branches {
		e.branches[i] = newBranchState()
	}
}

// windowOf maps a timestamp to its window index.
func (e *Engine) windowOf(ts uint64) uint64 { return ts / e.window }

// rollTo closes windows up to the one containing ts and returns the
// alerts the closing window produced.
func (e *Engine) rollTo(ts uint64) []Alert {
	w := e.windowOf(ts)
	if w == e.curWin {
		return nil
	}
	alerts := e.closeWindow()
	e.curWin = w
	e.resetWindow()
	return alerts
}

// closeWindow evaluates the ending window: it records the merged per-key
// finals and emits alerts for keys crossing the threshold. Per the
// paper's evaluation discipline, "values of reduce and distinct are
// evaluated and reset every 100ms" — queries report per window, which
// also gives multi-branch merges their natural retrospective semantics
// (a TCP SYN anywhere in the window vetoes Q9's DNS-only host, whatever
// the packet order).
func (e *Engine) closeWindow() []Alert {
	keys := map[uint64]bool{}
	for _, bs := range e.branches {
		for k := range bs.reduce {
			keys[k] = true
		}
	}
	if len(keys) == 0 {
		return nil
	}
	m := map[uint64]int64{}
	var alerts []Alert
	for k := range keys {
		g := e.mergedValue(k)
		m[k] = g
		var triggered bool
		if e.q.Merge != nil {
			triggered = e.q.Merge.Triggered(g)
		} else {
			th := e.q.Threshold()
			triggered = th > 0 && g > int64(th)
		}
		if triggered {
			alerts = append(alerts, Alert{Window: e.curWin, Key: k, Value: g})
		}
	}
	e.finals[e.curWin] = m
	e.alerts = append(e.alerts, alerts...)
	return alerts
}

// mergedValue combines branch results for key k under the query's merge
// (or returns branch 0's value for single-branch queries).
func (e *Engine) mergedValue(k uint64) int64 {
	if e.q.Merge == nil {
		return int64(e.branches[0].reduce[k])
	}
	rs := make([]uint64, len(e.branches))
	for i, bs := range e.branches {
		rs[i] = bs.reduce[k]
	}
	return e.q.Merge.Apply(rs)
}

// Process evaluates one packet, updating window state. It returns the
// alerts of any window the packet's timestamp closes (alerts are
// per-window, emitted when the window ends). Packets must arrive in
// non-decreasing timestamp order.
func (e *Engine) Process(p *packet.Packet) []Alert {
	out := e.rollTo(p.TS)
	v := p.Fields()
	for bi := range e.q.Branches {
		e.evalBranch(bi, &v)
	}
	return out
}

// evalBranch runs the packet through branch bi. It returns the branch's
// stateful key value and whether the packet survived the whole chain
// (including any trailing result filters).
func (e *Engine) evalBranch(bi int, v *fields.Vector) (uint64, bool) {
	b := &e.q.Branches[bi]
	bs := e.branches[bi]
	keys := fields.KeepAll()
	var result uint64
	var keyVal uint64
	haveState := false

	for pi, pr := range b.Prims {
		switch pr.Kind {
		case query.KindFilter:
			for _, pred := range pr.Preds {
				var val uint64
				if pred.OnResult() {
					val = result
				} else {
					val = v.Get(pred.Field)
				}
				if !pred.Eval(val) {
					return keyVal, false
				}
			}
		case query.KindMap:
			keys = pr.Keys
		case query.KindDistinct:
			keys = pr.Keys
			kb := string(pr.Keys.Bytes(v, make([]byte, 0, 32)))
			id := fmt.Sprintf("%d/%s", pi, kb)
			if bs.distinct[id] {
				return keyVal, false // not the first occurrence
			}
			bs.distinct[id] = true
			result = 1
		case query.KindReduce:
			keys = pr.Keys
			kv := singleKeyValue(pr.Keys, v)
			delta := uint64(1)
			if pr.Value != query.ValueOne {
				delta = v.Get(pr.Value)
			}
			bs.reduce[kv] += delta
			result = bs.reduce[kv]
			keyVal = kv
			haveState = true
		}
	}
	_ = keys
	if !haveState {
		// Stateless branch: survived filters/maps but has nothing to
		// merge or threshold; it never alerts.
		return keyVal, false
	}
	return keyVal, true
}

// singleKeyValue extracts the masked value of a key mask. Multi-field
// stateful keys fold by XOR of masked values — only used by distinct
// (whose state is keyed by full bytes anyway); reduce keys in all nine
// evaluation queries are single-field, where this is exact.
func singleKeyValue(m fields.Mask, v *fields.Vector) uint64 {
	var out uint64
	for _, id := range m.Fields() {
		out ^= v.Get(id) & m[id]
	}
	return out
}

// Run processes an entire timestamp-sorted trace and returns all alerts.
func (e *Engine) Run(pkts []*packet.Packet) []Alert {
	for _, p := range pkts {
		e.Process(p)
	}
	e.Flush()
	return e.alerts
}

// Flush closes the current window (recording its finals and alerts) and
// returns that window's alerts. Call after the last packet.
func (e *Engine) Flush() []Alert {
	alerts := e.closeWindow()
	e.resetWindow() // make Flush idempotent
	return alerts
}

// Alerts returns all alerts so far.
func (e *Engine) Alerts() []Alert { return e.alerts }

// FlaggedKeys returns the distinct keys that alerted in any window.
func (e *Engine) FlaggedKeys() map[uint64]bool {
	out := map[uint64]bool{}
	for _, a := range e.alerts {
		out[a.Key] = true
	}
	return out
}

// FinalCounts returns the exact merged per-key value at the end of each
// window: FinalCounts()[window][key].
func (e *Engine) FinalCounts() map[uint64]map[uint64]int64 { return e.finals }
