package query

import (
	"strings"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
)

func TestParseQ1Equivalent(t *testing.T) {
	q, err := Parse("q1", "filter(proto == tcp && tcp_flags == syn) | map(dip) | reduce(dip, sum) | filter(result > 40)")
	if err != nil {
		t.Fatal(err)
	}
	want := Q1(40)
	if q.NumPrimitives() != want.NumPrimitives() {
		t.Errorf("primitives = %d, want %d", q.NumPrimitives(), want.NumPrimitives())
	}
	if q.Threshold() != 40 {
		t.Errorf("threshold = %d", q.Threshold())
	}
	for i, pr := range q.Branches[0].Prims {
		if pr.Kind != want.Branches[0].Prims[i].Kind {
			t.Errorf("prim %d kind %v, want %v", i, pr.Kind, want.Branches[0].Prims[i].Kind)
		}
	}
	if !q.ReportKeys().Equal(fields.Keep(fields.DstIP)) {
		t.Errorf("report keys = %v", q.ReportKeys())
	}
}

func TestParseDistinctAndMultiKeys(t *testing.T) {
	q, err := Parse("scan", "filter(proto == tcp) | map(dip, dport) | distinct(dip, dport) | map(dip) | reduce(dip, sum) | filter(result > 99)")
	if err != nil {
		t.Fatal(err)
	}
	prims := q.Branches[0].Prims
	if prims[2].Kind != KindDistinct {
		t.Fatalf("prim 2 = %v", prims[2].Kind)
	}
	if !prims[2].Keys.Equal(fields.Keep(fields.DstIP, fields.DstPort)) {
		t.Errorf("distinct keys = %v", prims[2].Keys)
	}
}

func TestParsePrefixKeys(t *testing.T) {
	q, err := Parse("pfx", "filter(proto == udp) | map(sip/16) | reduce(sip/16, sum) | filter(result > 10)")
	if err != nil {
		t.Fatal(err)
	}
	want := fields.Mask{}.WithBits(fields.SrcIP, fields.Prefix(fields.SrcIP, 16))
	if !q.Branches[0].Prims[1].Keys.Equal(want) {
		t.Errorf("map mask = %v", q.Branches[0].Prims[1].Keys)
	}
	if !q.Branches[0].Prims[2].Keys.Equal(want) {
		t.Errorf("reduce mask = %v", q.Branches[0].Prims[2].Keys)
	}
}

func TestParseSumOfField(t *testing.T) {
	q, err := Parse("bytes", "filter(proto == tcp) | reduce(dip, sum(len)) | filter(result > 1000)")
	if err != nil {
		t.Fatal(err)
	}
	r := q.Branches[0].Prims[1]
	if r.Kind != KindReduce || r.Value != fields.PktLen {
		t.Errorf("reduce = %+v", r)
	}
}

func TestParseValues(t *testing.T) {
	q, err := Parse("vals", "filter(dip == 10.0.0.1 && dport == 443 && proto == tcp) | map(dip) | reduce(dip, sum) | filter(result > 5)")
	if err != nil {
		t.Fatal(err)
	}
	preds := q.Branches[0].Prims[0].Preds
	if preds[0].Value != uint64(packet.IPv4Addr("10.0.0.1")) {
		t.Errorf("ip literal = %d", preds[0].Value)
	}
	if preds[1].Value != 443 || preds[2].Value != packet.ProtoTCP {
		t.Errorf("literals = %d %d", preds[1].Value, preds[2].Value)
	}
}

func TestParseFlagNames(t *testing.T) {
	q, err := Parse("flags", "filter(tcp_flags == synack) | map(sip) | reduce(sip, sum) | filter(result > 1)")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Branches[0].Prims[0].Preds[0].Value; got != packet.FlagSYN|packet.FlagACK {
		t.Errorf("synack = %d", got)
	}
}

func TestParseWindow(t *testing.T) {
	q, err := Parse("w", "window(250ms) | filter(proto == udp) | reduce(dip, sum) | filter(result > 1)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Window != 250*time.Millisecond {
		t.Errorf("window = %v", q.Window)
	}
}

func TestParseComparisonOperators(t *testing.T) {
	ops := map[string]CmpOp{
		"==": CmpEq, "!=": CmpNe, ">": CmpGt, ">=": CmpGe, "<": CmpLt, "<=": CmpLe,
	}
	for tok, want := range ops {
		q, err := Parse("ops", "filter(len "+tok+" 100) | reduce(dip, sum) | filter(result > 1)")
		if err != nil {
			t.Fatalf("%s: %v", tok, err)
		}
		if got := q.Branches[0].Prims[0].Preds[0].Op; got != want {
			t.Errorf("%s parsed as %v", tok, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"empty":          "",
		"unknown prim":   "explode(dip)",
		"unknown field":  "filter(warp == 9)",
		"unknown op":     "filter(dip ~ 9)",
		"bad value":      "filter(dip == banana)",
		"missing paren":  "filter(proto == tcp",
		"trailing junk":  "map(dip) extra",
		"bad window":     "window(soon)",
		"bad prefix":     "map(sip/xx)",
		"empty filter":   "filter()",
		"lonely pipe":    "map(dip) |",
		"invalid result": "filter(result > 1)", // result before any stateful prim
	}
	for name, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("%s: %q parsed without error", name, src)
		}
	}
}

func TestParsedQueryStringRoundTripish(t *testing.T) {
	q, err := Parse("rt", "filter(proto == tcp && tcp_flags == syn) | map(dip) | reduce(dip, sum) | filter(result > 40)")
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"filter(proto==6", "map(dip)", "reduce(keys=(dip)", "result>40"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered query missing %q:\n%s", want, s)
		}
	}
}

func TestParseMultiBranchMerge(t *testing.T) {
	src := `filter(proto == tcp && tcp_flags == syn) | map(dip) | reduce(dip, sum) | filter(result > 0) ;
		filter(proto == tcp && tcp_flags == synack) | map(sip) | reduce(sip, sum) | filter(result > 0) ;
		filter(proto == tcp && tcp_flags == ack) | map(dip) | reduce(dip, sum) | filter(result > 0) ;
		merge(1, 1, -2 > 30)`
	q, err := Parse("q6_dsl", src)
	if err != nil {
		t.Fatal(err)
	}
	want := Q6(30)
	if len(q.Branches) != 3 {
		t.Fatalf("branches = %d", len(q.Branches))
	}
	if q.NumPrimitives() != want.NumPrimitives() {
		t.Errorf("primitives = %d, want %d", q.NumPrimitives(), want.NumPrimitives())
	}
	if q.Merge == nil || q.Merge.Op != MergeLinear || q.Merge.Threshold != 30 {
		t.Fatalf("merge = %+v", q.Merge)
	}
	if len(q.Merge.Coeffs) != 3 || q.Merge.Coeffs[2] != -2 {
		t.Errorf("coeffs = %v", q.Merge.Coeffs)
	}
	// And it must survive compilation prerequisites: per-branch
	// single-field stateful keys.
	for bi := range q.Branches {
		if len(q.Branches[bi].StatefulKeys().Fields()) != 1 {
			t.Errorf("branch %d stateful keys not single-field", bi)
		}
	}
}

func TestParseMergeMin(t *testing.T) {
	src := `filter(proto == tcp && tcp_flags == syn) | map(dip) | reduce(dip, sum) | filter(result > 0) ;
		filter(proto == tcp && tcp_flags == finack) | map(dip) | reduce(dip, sum) | filter(result > 0) ;
		merge(min > 20)`
	q, err := Parse("q7_dsl", src)
	if err != nil {
		t.Fatal(err)
	}
	if q.Merge == nil || q.Merge.Op != MergeMin || q.Merge.Threshold != 20 {
		t.Fatalf("merge = %+v", q.Merge)
	}
	if len(q.Branches) != 2 {
		t.Errorf("branches = %d", len(q.Branches))
	}
}

func TestParseMergeErrors(t *testing.T) {
	bad := map[string]string{
		"coeff count mismatch": "map(dip) | reduce(dip, sum) ; map(sip) | reduce(sip, sum) ; merge(1 > 5)",
		"bad coeff":            "map(dip) | reduce(dip, sum) ; map(sip) | reduce(sip, sum) ; merge(x, 1 > 5)",
		"min with less-than":   "map(dip) | reduce(dip, sum) ; map(sip) | reduce(sip, sum) ; merge(min < 5)",
		"missing cmp":          "map(dip) | reduce(dip, sum) ; map(sip) | reduce(sip, sum) ; merge(1, 1 5)",
		"trailing after merge": "map(dip) | reduce(dip, sum) ; map(sip) | reduce(sip, sum) ; merge(1, 1 > 5) extra",
		"branch without merge": "map(dip) | reduce(dip, sum) ; map(sip) | reduce(sip, sum)",
	}
	for name, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}
