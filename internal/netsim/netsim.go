// Package netsim simulates a network of Newton-enabled programmable
// switches: every switch of a topology gets a pipeline with the module
// layout loaded, packets walk ECMP forwarding paths hop by hop, result
// snapshot headers carry cross-switch query state, register windows roll
// on a shared virtual clock, and switch outages (the Sonata reboot
// model) drop traffic for their duration.
package netsim

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/topology"
)

// Config sizes each switch in the network.
type Config struct {
	// Stages is the module stage count per pipeline (default 12, the
	// paper's Tofino).
	Stages int
	// ArraySize is each state bank's register count (default 4096).
	ArraySize uint32
	// Window is the query evaluation window (default 100 ms).
	Window time.Duration
}

func (c Config) withDefaults() Config {
	if c.Stages == 0 {
		c.Stages = dataplane.TofinoStages
	}
	if c.ArraySize == 0 {
		c.ArraySize = 4096
	}
	if c.Window == 0 {
		c.Window = 100 * time.Millisecond
	}
	return c
}

// Node is one switch of the network: its data plane, module layout, and
// engine.
type Node struct {
	ID     int
	DP     *dataplane.Switch
	Layout *modules.Layout
	Eng    *modules.Engine
}

// Network is the simulated deployment.
type Network struct {
	Topo *topology.Topology
	Cfg  Config

	nodes map[int]*Node

	clock     uint64
	nextEpoch uint64

	outageFrom, outageTo map[int]uint64

	delivered, dropped uint64

	// Deferred, when set, receives packets that exit the network still
	// carrying a result snapshot — a query whose partitions outnumber
	// the path's Newton hops. The software analyzer continues the query
	// from the snapshot (§5.2); see analyzer.DeferredTail. The hook runs
	// before the snapshot is stripped.
	Deferred func(pkt *packet.Packet)
}

// New builds a network with a Newton switch per topology switch node.
func New(topo *topology.Topology, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	n := &Network{
		Topo: topo, Cfg: cfg,
		nodes:      map[int]*Node{},
		nextEpoch:  uint64(cfg.Window),
		outageFrom: map[int]uint64{}, outageTo: map[int]uint64{},
	}
	for _, id := range topo.Switches() {
		layout, err := modules.NewLayout(modules.LayoutCompact, cfg.Stages, cfg.ArraySize)
		if err != nil {
			return nil, fmt.Errorf("netsim: switch %s: %w", topo.Node(id).Name, err)
		}
		eng := modules.NewEngine(layout)
		dp := dataplane.NewSwitch(topo.Node(id).Name, cfg.Stages, modules.StageCapacity())
		if err := dp.AddRoute(0, 0, 1); err != nil {
			return nil, err
		}
		dp.Monitor = eng
		n.nodes[id] = &Node{ID: id, DP: dp, Layout: layout, Eng: eng}
	}
	return n, nil
}

// Node returns the switch node with the given topology ID.
func (n *Network) Node(id int) *Node { return n.nodes[id] }

// Nodes returns all switch nodes keyed by topology ID.
func (n *Network) Nodes() map[int]*Node { return n.nodes }

// Clock returns the current virtual time in nanoseconds.
func (n *Network) Clock() uint64 { return n.clock }

// AdvanceTo moves the virtual clock forward, rolling register windows at
// each boundary it crosses.
func (n *Network) AdvanceTo(ts uint64) {
	if ts < n.clock {
		return
	}
	for ts >= n.nextEpoch {
		for _, node := range n.nodes {
			node.Layout.Pipeline().NextEpoch()
		}
		n.nextEpoch += uint64(n.Cfg.Window)
	}
	n.clock = ts
}

// SetOutage takes a switch down for [from, until) of virtual time — the
// Sonata reboot model's lever.
func (n *Network) SetOutage(sw int, from, until uint64) {
	n.outageFrom[sw] = from
	n.outageTo[sw] = until
}

func (n *Network) inOutage(sw int) bool {
	to, ok := n.outageTo[sw]
	return ok && n.clock >= n.outageFrom[sw] && n.clock < to
}

// flowSeed derives the ECMP seed from the packet's 5-tuple.
func flowSeed(p *packet.Packet) uint64 {
	h := fnv.New64a()
	k := p.Flow()
	var b [13]byte
	b[0], b[1], b[2], b[3] = byte(k.Src>>24), byte(k.Src>>16), byte(k.Src>>8), byte(k.Src)
	b[4], b[5], b[6], b[7] = byte(k.Dst>>24), byte(k.Dst>>16), byte(k.Dst>>8), byte(k.Dst)
	b[8], b[9] = byte(k.SPort>>8), byte(k.SPort)
	b[10], b[11] = byte(k.DPort>>8), byte(k.DPort)
	b[12] = k.Proto
	h.Write(b[:])
	return h.Sum64()
}

// Deliver routes one packet from srcHost to dstHost along its ECMP path
// and processes it at every switch. It returns the switch path taken and
// whether the packet reached the destination. A switch in outage drops
// the packet.
func (n *Network) Deliver(pkt *packet.Packet, srcHost, dstHost int) ([]int, bool) {
	path := n.Topo.Path(srcHost, dstHost, flowSeed(pkt))
	if path == nil {
		n.dropped++
		return nil, false
	}
	sw := n.Topo.SwitchPath(path)
	ok := n.DeliverPath(pkt, sw)
	return sw, ok
}

// DeliverPath processes a packet along an explicit switch path.
func (n *Network) DeliverPath(pkt *packet.Packet, switches []int) bool {
	n.AdvanceTo(pkt.TS)
	pkt.SP = nil // hosts never send result snapshots
	for _, id := range switches {
		node, ok := n.nodes[id]
		if !ok {
			n.dropped++
			return false
		}
		if n.inOutage(id) {
			n.dropped++
			return false
		}
		if _, forwarded := node.DP.Process(pkt); !forwarded {
			n.dropped++
			return false
		}
	}
	if pkt.SP != nil {
		// The last Newton hop normally strips the snapshot before the
		// host; a leftover means the query's tail never ran on this path
		// — §5.2's fallback hands the execution status to the software
		// analyzer before the header is removed.
		if n.Deferred != nil {
			n.Deferred(pkt)
		}
		pkt.SP = nil
	}
	n.delivered++
	return true
}

// DrainReports collects and clears mirrored reports from every switch.
func (n *Network) DrainReports() []dataplane.Report {
	var out []dataplane.Report
	for _, node := range n.nodes {
		out = append(out, node.DP.DrainReports()...)
	}
	return out
}

// Stats returns network-wide delivery counters.
func (n *Network) Stats() (delivered, dropped uint64) {
	return n.delivered, n.dropped
}

// ResetStats zeroes the delivery counters (between experiment phases).
func (n *Network) ResetStats() { n.delivered, n.dropped = 0, 0 }
