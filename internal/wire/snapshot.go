package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/sketch"
)

// Snapshot payloads carry one epoch's state-bank captures. Because bank
// registers reset at every window roll, consecutive epochs of a stable
// workload touch mostly the same slots with similar counts — so each
// bank is sent as varint-packed sparse cells, either of the values
// themselves (full) or of the per-cell change against the same bank in
// the previous frame (delta: counter subtract for CMS rows, XOR for
// Bloom rows). Delta frames chain: each names the epoch of the frame it
// builds on, and a decoder that missed a frame rejects the chain with
// ErrDeltaBase until the next keyframe re-grounds it. The encoder emits
// keyframes every KeyframeEvery frames and whenever its state is Reset
// (reconnect, write failure), so replay never needs history.
//
//	payload := uvarint(epoch) uvarint(hasBase) [uvarint(baseEpoch)]
//	           uvarint(banks) bank*
//	bank    := uvarint(qid part branch row kind algo seed range width
//	           ownerIndex ownerCount) mask byte(enc) uvarint(cells)
//	           (uvarint(idxGap) uvarint(value))*
//
// Cell indexes are strictly increasing: the first gap is the absolute
// index, later gaps are the distance from the previous index (≥ 1).

// BankID names one state bank across epochs.
type BankID struct {
	QueryID, Part, Branch, Row int
}

// bankCfg is the hash/merge configuration of a bank. A config change
// (rewidened sketch, reseeded hash, remasked keys) makes old values
// incomparable, so the encoder falls back to a full bank when it
// differs from the previous epoch's.
type bankCfg struct {
	Kind                   modules.BankKind
	Algo                   sketch.Algo
	Seed, Range            uint32
	OwnerIndex, OwnerCount uint32
	Width                  uint32
	KeyMask                fields.Mask
}

func cfgOf(b *modules.BankSnapshot) bankCfg {
	return bankCfg{
		Kind: b.Kind, Algo: b.Algo, Seed: b.Seed, Range: b.Range,
		OwnerIndex: b.OwnerIndex, OwnerCount: b.OwnerCount,
		Width: b.Width, KeyMask: b.KeyMask,
	}
}

const (
	encFull  = 0
	encDelta = 1
)

type prevBank struct {
	cfg  bankCfg
	vals []uint32
}

// SnapshotEncoder turns per-epoch bank snapshots into wire payloads,
// holding the previous frame's values so stable banks shrink to sparse
// deltas. It is not safe for concurrent use; the telemetry exporter
// drives it under its write lock.
type SnapshotEncoder struct {
	// KeyframeEvery emits a full keyframe every Nth frame (1 = every
	// frame, disabling delta encoding). Zero means DefaultKeyframeEvery.
	KeyframeEvery int

	prev      map[BankID]prevBank
	prevEpoch uint32
	has       bool
	sinceKey  int

	// DeltaBanks and FullBanks count banks encoded each way over the
	// encoder's lifetime, for the exporter's wire counters.
	DeltaBanks uint64
	FullBanks  uint64
}

// DefaultKeyframeEvery is the keyframe cadence when the exporter
// doesn't choose one: one full grounding frame per 8 epochs.
const DefaultKeyframeEvery = 8

// Reset drops all delta state; the next frame is a keyframe. Call it
// after any write failure or reconnect so the stream never deltas
// against a frame the peer may not have seen.
func (e *SnapshotEncoder) Reset() {
	e.prev = nil
	e.has = false
	e.sinceKey = 0
}

// Encode appends one snapshot frame's payload and returns the flags to
// frame it with (FlagDelta on non-keyframes). Encoding commits the
// encoder's delta state — if the subsequent write fails, Reset.
func (e *SnapshotEncoder) Encode(dst []byte, epoch uint32, banks []modules.BankSnapshot) ([]byte, Flags) {
	every := e.KeyframeEvery
	if every <= 0 {
		every = DefaultKeyframeEvery
	}
	keyframe := !e.has || e.sinceKey >= every-1

	dst = binary.AppendUvarint(dst, uint64(epoch))
	var flags Flags
	if keyframe {
		dst = binary.AppendUvarint(dst, 0)
	} else {
		flags = FlagDelta
		dst = binary.AppendUvarint(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(e.prevEpoch))
	}
	dst = binary.AppendUvarint(dst, uint64(len(banks)))

	next := e.prev
	if keyframe {
		// Rebuilding from scratch prunes banks of removed queries.
		next = make(map[BankID]prevBank, len(banks))
	} else if next == nil {
		next = make(map[BankID]prevBank, len(banks))
	}
	for i := range banks {
		b := &banks[i]
		id := BankID{b.QueryID, b.Part, b.Branch, b.Row}
		cfg := cfgOf(b)
		dst = appendBankHeader(dst, b)

		var base []uint32
		if !keyframe {
			if p, ok := e.prev[id]; ok && p.cfg == cfg {
				base = p.vals
			}
		}
		// A bank whose registers mostly turned over since the last epoch
		// (cells dropping to zero count as changes) can be cheaper to send
		// in full — sparse-full elides the zeroed cells, a delta must name
		// them. Pick per bank: ties go to delta, whose zigzag differences
		// pack smaller than absolute counters.
		if base != nil && countDeltaCells(base, b.Values) <= countNonzero(b.Values) {
			dst = appendDeltaCells(dst, cfg.Kind, base, b.Values)
			e.DeltaBanks++
		} else {
			dst = appendFullCells(dst, b.Values)
			e.FullBanks++
		}
		next[id] = prevBank{cfg: cfg, vals: snapValues(b)}
	}
	e.prev = next
	e.prevEpoch = epoch
	e.has = true
	if keyframe {
		e.sinceKey = 0
	} else {
		e.sinceKey++
	}
	return dst, flags
}

// snapValues copies a bank's values at its declared width — the codec's
// canonical cell count (short slices read as zero-padded).
func snapValues(b *modules.BankSnapshot) []uint32 {
	vals := make([]uint32, b.Width)
	copy(vals, b.Values)
	return vals
}

func appendBankHeader(dst []byte, b *modules.BankSnapshot) []byte {
	dst = binary.AppendUvarint(dst, uint64(b.QueryID))
	dst = binary.AppendUvarint(dst, uint64(b.Part))
	dst = binary.AppendUvarint(dst, uint64(b.Branch))
	dst = binary.AppendUvarint(dst, uint64(b.Row))
	dst = binary.AppendUvarint(dst, uint64(b.Kind))
	dst = binary.AppendUvarint(dst, uint64(b.Algo))
	dst = binary.AppendUvarint(dst, uint64(b.Seed))
	dst = binary.AppendUvarint(dst, uint64(b.Range))
	dst = binary.AppendUvarint(dst, uint64(b.Width))
	dst = binary.AppendUvarint(dst, uint64(b.OwnerIndex))
	dst = binary.AppendUvarint(dst, uint64(b.OwnerCount))
	return appendMask(dst, b.KeyMask)
}

// countNonzero is the cell count a sparse-full encoding would carry.
func countNonzero(vals []uint32) int {
	n := 0
	for _, v := range vals {
		if v != 0 {
			n++
		}
	}
	return n
}

// countDeltaCells is the cell count a delta encoding would carry: one
// per cell that differs from base (vals shorter than base reads as
// zero-padded).
func countDeltaCells(base, vals []uint32) int {
	n := 0
	if len(vals) >= len(base) {
		for i, bv := range base {
			if vals[i] != bv {
				n++
			}
		}
		return n
	}
	for i, v := range vals {
		if v != base[i] {
			n++
		}
	}
	for _, bv := range base[len(vals):] {
		if bv != 0 {
			n++
		}
	}
	return n
}

// appendFullCells sparse-encodes the nonzero cells of a bank.
func appendFullCells(dst []byte, vals []uint32) []byte {
	dst = append(dst, encFull)
	dst = binary.AppendUvarint(dst, uint64(countNonzero(vals)))
	last := -1
	for i, v := range vals {
		if v == 0 {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(i-max(last, 0)))
		dst = binary.AppendUvarint(dst, uint64(v))
		last = i
	}
	return dst
}

// appendDeltaCells sparse-encodes the cells that changed since base:
// zigzag-packed counter differences for CMS rows, XOR for Bloom rows.
func appendDeltaCells(dst []byte, kind modules.BankKind, base, vals []uint32) []byte {
	dst = append(dst, encDelta)
	dst = binary.AppendUvarint(dst, uint64(countDeltaCells(base, vals)))
	xor := kind == modules.BankBloomRow
	last := -1
	for i, bv := range base {
		var v uint32
		if i < len(vals) {
			v = vals[i]
		}
		if v == bv {
			continue
		}
		d := zigzag(int64(v) - int64(bv))
		if xor {
			d = uint64(v ^ bv)
		}
		dst = binary.AppendUvarint(dst, uint64(i-max(last, 0)))
		dst = binary.AppendUvarint(dst, d)
		last = i
	}
	return dst
}

// SnapshotDecoder is the receive side: it reconstructs full bank values
// from keyframes and chained deltas. One decoder serves one stream; it
// is not safe for concurrent use.
type SnapshotDecoder struct {
	prev  map[BankID]prevBank
	epoch uint32
	has   bool
}

// Decode parses one snapshot payload into full bank snapshots. A delta
// frame whose base is not the decoder's last applied frame returns
// ErrDeltaBase with no state change — drop the frame and resynchronize
// at the next keyframe. Returned Values slices are shared with decoder
// state; treat them as read-only.
func (d *SnapshotDecoder) Decode(payload []byte) (uint32, []modules.BankSnapshot, error) {
	r := &reader{b: payload}
	epoch := uint32(r.uvarint())
	delta := false
	if r.uvarint() != 0 {
		delta = true
		base := uint32(r.uvarint())
		if r.err == nil && (!d.has || base != d.epoch) {
			return 0, nil, fmt.Errorf("%w: base %d, held %d", ErrDeltaBase, base, d.epoch)
		}
	}
	nBanks := r.length()
	out := make([]modules.BankSnapshot, 0, nBanks)
	next := make(map[BankID]prevBank, nBanks)
	for i := 0; i < nBanks && r.err == nil; i++ {
		b, err := d.decodeBank(r, delta)
		if err != nil {
			return 0, nil, err
		}
		out = append(out, b)
		next[BankID{b.QueryID, b.Part, b.Branch, b.Row}] = prevBank{cfg: cfgOf(&b), vals: b.Values}
	}
	if err := r.done(); err != nil {
		return 0, nil, fmt.Errorf("snapshot: %w", err)
	}
	// Commit only after the whole frame parsed: keyframes replace the
	// held banks (pruning removed ones), deltas update in place.
	if delta {
		for id, p := range next {
			if d.prev == nil {
				d.prev = map[BankID]prevBank{}
			}
			d.prev[id] = p
		}
	} else {
		d.prev = next
	}
	d.epoch = epoch
	d.has = true
	return epoch, out, nil
}

func (d *SnapshotDecoder) decodeBank(r *reader, deltaFrame bool) (modules.BankSnapshot, error) {
	var b modules.BankSnapshot
	b.QueryID = int(r.uvarint())
	b.Part = int(r.uvarint())
	b.Branch = int(r.uvarint())
	b.Row = int(r.uvarint())
	b.Kind = modules.BankKind(r.uvarint())
	b.Algo = sketch.Algo(r.uvarint())
	b.Seed = uint32(r.uvarint())
	b.Range = uint32(r.uvarint())
	b.Width = uint32(r.uvarint())
	b.OwnerIndex = uint32(r.uvarint())
	b.OwnerCount = uint32(r.uvarint())
	b.KeyMask = r.mask()
	enc := r.byte()
	if r.err != nil {
		return b, fmt.Errorf("snapshot bank: %w", r.err)
	}
	if b.Width > MaxFrame/4 {
		return b, fmt.Errorf("%w: bank width %d", ErrTooLarge, b.Width)
	}
	if b.Kind != modules.BankCMSRow && b.Kind != modules.BankBloomRow {
		return b, fmt.Errorf("%w: bank kind %d", ErrMalformed, b.Kind)
	}

	vals := make([]uint32, b.Width)
	var base []uint32
	if enc == encDelta {
		if !deltaFrame {
			return b, fmt.Errorf("%w: delta bank in keyframe", ErrMalformed)
		}
		id := BankID{b.QueryID, b.Part, b.Branch, b.Row}
		p, ok := d.prev[id]
		if !ok || p.cfg != cfgOf(&b) {
			return b, fmt.Errorf("%w: no comparable base bank for %v", ErrDeltaBase, id)
		}
		base = p.vals
		copy(vals, base)
	} else if enc != encFull {
		return b, fmt.Errorf("%w: bank encoding %d", ErrMalformed, enc)
	}

	cells := int(r.uvarint())
	if r.err == nil && uint64(cells) > uint64(b.Width) {
		return b, fmt.Errorf("%w: %d cells for width %d", ErrMalformed, cells, b.Width)
	}
	idx := -1
	for j := 0; j < cells && r.err == nil; j++ {
		gap := r.uvarint()
		v := r.uvarint()
		if idx < 0 {
			idx = int(gap)
		} else {
			if gap == 0 {
				return b, fmt.Errorf("%w: zero cell gap", ErrMalformed)
			}
			idx += int(gap)
		}
		if uint64(idx) >= uint64(b.Width) {
			return b, fmt.Errorf("%w: cell index %d beyond width %d", ErrMalformed, idx, b.Width)
		}
		switch {
		case enc == encFull:
			if v == 0 || v > 0xFFFFFFFF {
				return b, fmt.Errorf("%w: cell value %d", ErrMalformed, v)
			}
			vals[idx] = uint32(v)
		case b.Kind == modules.BankBloomRow:
			if v > 0xFFFFFFFF {
				return b, fmt.Errorf("%w: cell xor %d", ErrMalformed, v)
			}
			vals[idx] = base[idx] ^ uint32(v)
		default:
			nv := int64(base[idx]) + unzigzag(v)
			if nv < 0 || nv > 0xFFFFFFFF {
				return b, fmt.Errorf("%w: cell delta overflows counter", ErrMalformed)
			}
			vals[idx] = uint32(nv)
		}
	}
	if r.err != nil {
		return b, fmt.Errorf("snapshot bank: %w", r.err)
	}
	b.Values = vals
	return b, nil
}
